// Tiled-image access: a 2048x2048 byte "image" stored row-major in one file;
// each rank repeatedly extracts a 256x256 tile that is *noncontiguous* on
// disk (one 256-byte run per row). Compares the three access strategies for
// noncontiguous independent I/O on the DAFS driver:
//   per-row requests, data sieving, and batched direct list-I/O.
#include <cstdio>
#include <vector>

#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"

namespace {

constexpr std::uint32_t kImage = 2048;
constexpr std::uint32_t kTile = 256;

}  // namespace

int main() {
  sim::Fabric fabric;
  dafs::Server filer(fabric, fabric.add_node("filer"));
  filer.start();

  mpi::WorldConfig cfg;
  cfg.nprocs = 4;
  cfg.fabric = &fabric;
  mpi::World world(cfg);

  world.run([&](mpi::Comm& comm) {
    via::Nic nic(fabric, world.node_of(comm.rank()), "client-nic");
    auto session = std::move(dafs::Session::connect(nic).value());

    // Rank 0 writes the source image once (contiguous).
    {
      auto f = std::move(
          mpiio::File::open(comm, "/image.raw",
                            mpiio::kModeCreate | mpiio::kModeRdwr,
                            mpiio::Info{}, mpiio::dafs_driver(*session))
              .value());
      if (comm.rank() == 0) {
        std::vector<std::byte> image(kImage * kImage);
        for (std::uint32_t i = 0; i < image.size(); ++i) {
          image[i] = static_cast<std::byte>((i * 31) & 0xff);
        }
        auto w = f->write_at(0, image.data(), image.size(),
                             mpi::Datatype::byte());
        if (!w.ok()) {
          std::fprintf(stderr, "image write failed: %s\n",
                       mpiio::to_string(mpiio::error_class(w.error())));
        }
      }
      // Collective; includes the visibility barrier.
      if (auto st = f->close(); st != mpiio::Err::kOk) {
        std::fprintf(stderr, "close failed: %s\n",
                     mpiio::to_string(mpiio::error_class(st)));
      }
    }

    // Each rank owns one tile per strategy run.
    const std::uint32_t tr = (comm.rank() / 2) * kTile * 4;
    const std::uint32_t tc = (comm.rank() % 2) * kTile * 4;
    const std::array<std::uint32_t, 2> sizes = {kImage, kImage};
    const std::array<std::uint32_t, 2> sub = {kTile, kTile};
    const std::array<std::uint32_t, 2> start = {tr, tc};
    auto tile_view =
        mpi::Datatype::subarray(sizes, sub, start, mpi::Datatype::byte());

    auto run = [&](const char* label, const char* ds_hint,
                   bool per_row) {
      mpiio::Info info;
      if (ds_hint) info.set("romio_ds_read", ds_hint);
      auto f = std::move(mpiio::File::open(comm, "/image.raw",
                                           mpiio::kModeRdonly, info,
                                           mpiio::dafs_driver(*session))
                             .value());
      std::vector<std::byte> tile(kTile * kTile);
      const sim::Time t0 = comm.actor().now();
      if (per_row) {
        // Naive: one request per tile row.
        for (std::uint32_t r = 0; r < kTile; ++r) {
          if (!f->read_at(static_cast<std::uint64_t>(tr + r) * kImage + tc,
                          tile.data() + r * kTile, kTile,
                          mpi::Datatype::byte())
                   .ok()) {
            std::fprintf(stderr, "per-row read_at failed\n");
          }
        }
      } else {
        if (f->set_view(0, mpi::Datatype::byte(), tile_view) !=
            mpiio::Err::kOk) {
          std::fprintf(stderr, "set_view failed\n");
        }
        if (!f->read_at(0, tile.data(), tile.size(), mpi::Datatype::byte())
                 .ok()) {
          std::fprintf(stderr, "tile read_at failed\n");
        }
      }
      const sim::Time dt = comm.actor().now() - t0;
      // Verify a few pixels.
      bool ok = true;
      for (std::uint32_t r = 0; r < kTile; r += 37) {
        const std::uint64_t abs = static_cast<std::uint64_t>(tr + r) * kImage +
                                  tc + (r % kTile);
        if (tile[r * kTile + (r % kTile)] !=
            static_cast<std::byte>((abs * 31) & 0xff)) {
          ok = false;
        }
      }
      if (comm.rank() == 0) {
        std::printf("  %-28s %8.2f ms  (%s)\n", label, sim::to_msec(dt),
                    ok ? "verified" : "CORRUPT");
      }
      if (auto st = f->close(); st != mpiio::Err::kOk) {
        std::fprintf(stderr, "close failed: %s\n",
                     mpiio::to_string(mpiio::error_class(st)));
      }
    };

    if (comm.rank() == 0) {
      std::printf("256x256 tile extraction from a %ux%u image (rank 0 "
                  "modeled time):\n",
                  kImage, kImage);
    }
    run("per-row requests", nullptr, /*per_row=*/true);
    run("data sieving", "enable", /*per_row=*/false);
    run("batched direct list-I/O", "disable", /*per_row=*/false);
  });
  return 0;
}
