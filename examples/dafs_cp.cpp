// dafs_cp: a plain (non-MPI) uDAFS client session exercising the file
// protocol directly — mkdir, create, write, copy, rename, listing — the way
// a user-space tool on a DAFS-attached host would.
#include <cstdio>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"

int main() {
  sim::Fabric fabric;
  dafs::Server filer(fabric, fabric.add_node("filer"));
  filer.start();

  const auto node = fabric.add_node("workstation");
  sim::Actor actor("workstation", &fabric.node(node));
  sim::ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());

  // Build a small tree and a source file.
  s->mkdir("/data");
  s->mkdir("/data/raw");
  auto src = s->open("/data/raw/input.bin", dafs::kOpenCreate).value();
  std::vector<std::byte> payload(3 * 1024 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>((i ^ (i >> 9)) & 0xff);
  }
  s->pwrite(src, 0, payload);
  std::printf("wrote /data/raw/input.bin (%zu bytes)\n", payload.size());

  // Copy: stream through a 256 KiB buffer (direct I/O both directions).
  auto dst = s->open("/data/copy.bin", dafs::kOpenCreate).value();
  std::vector<std::byte> buf(256 * 1024);
  std::uint64_t off = 0;
  const sim::Time t0 = actor.now();
  for (;;) {
    auto got = s->pread(src, off, buf);
    if (!got.ok() || got.value() == 0) break;
    s->pwrite(dst, off, std::span<const std::byte>(buf.data(), got.value()));
    off += got.value();
  }
  const sim::Time dt = actor.now() - t0;
  std::printf("copied %llu bytes in %.2f ms modeled (%.1f MB/s effective)\n",
              static_cast<unsigned long long>(off), sim::to_msec(dt),
              static_cast<double>(off) * 1000.0 / static_cast<double>(dt));

  // Verify.
  std::vector<std::byte> back(payload.size());
  s->pread(dst, 0, back);
  std::printf("verify: %s\n",
              back == payload ? "copies identical" : "MISMATCH");

  // Rename + listing.
  s->rename("/data/copy.bin", "/data/raw/copy.bin");
  auto ls = s->readdir("/data/raw").value();
  std::printf("/data/raw:\n");
  for (const auto& e : ls) {
    auto attrs = s->getattr(s->open("/data/raw/" + e.name).value()).value();
    std::printf("  %-12s %10llu bytes\n", e.name.c_str(),
                static_cast<unsigned long long>(attrs.size));
  }

  std::printf("registration cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(s->reg_cache_hits()),
              static_cast<unsigned long long>(s->reg_cache_misses()));
  s.reset();
  return 0;
}
