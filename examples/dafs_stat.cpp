// dafs_stat: a "top for the filer" — one session generates mixed file
// traffic while a second session polls the in-band kStatsQuery snapshot and
// prints the server's live state: role/term, queue depth, aggregate
// counters, and the per-client attribution table. The stats plane is served
// outside admission control, so exactly this tool keeps working while the
// filer sheds load.
#include <cstdio>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"

namespace {

const char* role_name(std::uint32_t r) {
  switch (static_cast<dafs::Server::Role>(r)) {
    case dafs::Server::Role::kPrimary: return "primary";
    case dafs::Server::Role::kStandby: return "standby";
    case dafs::Server::Role::kFenced: return "fenced";
    case dafs::Server::Role::kCandidate: return "candidate";
  }
  return "?";
}

void print_snapshot(const dafs::StatsSnapshot& snap) {
  const dafs::WireStatsHeader& h = snap.header;
  std::printf("filer @ %.3f ms virtual: role=%s term=%llu sessions=%llu "
              "queue=%llu/%llu replay_cache=%lluB requests=%llu sheds=%llu%s\n",
              sim::to_msec(h.now_ns), role_name(h.role),
              static_cast<unsigned long long>(h.term),
              static_cast<unsigned long long>(h.sessions_live),
              static_cast<unsigned long long>(h.admission_queue_depth),
              static_cast<unsigned long long>(h.admission_limit),
              static_cast<unsigned long long>(h.replay_cache_bytes),
              static_cast<unsigned long long>(h.requests_total),
              static_cast<unsigned long long>(h.busy_sheds),
              h.truncated != 0 ? " (truncated)" : "");
  std::printf("  %-10s %12s %12s %8s %8s %8s %6s %6s\n", "client", "bytes_in",
              "bytes_out", "reads", "writes", "meta", "retx", "sheds");
  for (const dafs::WireSessionStats& s : snap.sessions) {
    std::printf("  %-10llu %12llu %12llu %8llu %8llu %8llu %6llu %6llu\n",
                static_cast<unsigned long long>(s.client_id),
                static_cast<unsigned long long>(s.bytes_in),
                static_cast<unsigned long long>(s.bytes_out),
                static_cast<unsigned long long>(s.ops_read),
                static_cast<unsigned long long>(s.ops_write),
                static_cast<unsigned long long>(s.ops_meta),
                static_cast<unsigned long long>(s.retransmits),
                static_cast<unsigned long long>(s.sheds));
  }
}

}  // namespace

int main() {
  sim::Fabric fabric;
  dafs::Server filer(fabric, fabric.add_node("filer"));
  filer.start();

  // The workload session and the monitor session live on separate nodes —
  // the monitor is an observer, not part of the load.
  const auto work_node = fabric.add_node("worker");
  const auto mon_node = fabric.add_node("monitor");
  via::Nic work_nic(fabric, work_node, "work-nic");
  via::Nic mon_nic(fabric, mon_node, "mon-nic");
  sim::Actor work_actor("worker", &fabric.node(work_node));
  sim::Actor mon_actor("monitor", &fabric.node(mon_node));

  std::unique_ptr<dafs::Session> worker;
  {
    sim::ActorScope scope(work_actor);
    worker = std::move(dafs::Session::connect(work_nic).value());
  }
  std::unique_ptr<dafs::Session> monitor;
  {
    sim::ActorScope scope(mon_actor);
    monitor = std::move(dafs::Session::connect(mon_nic).value());
  }

  // Interleave load with polls: each round writes/reads a chunk, then the
  // monitor samples the live snapshot.
  std::vector<std::byte> chunk(64 * 1024);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<std::byte>(i & 0xff);
  }
  dafs::Fh fh;
  {
    sim::ActorScope scope(work_actor);
    fh = worker->open("/stat-demo.bin", dafs::kOpenCreate).value();
  }
  for (int round = 0; round < 4; ++round) {
    {
      sim::ActorScope scope(work_actor);
      for (int k = 0; k < 8; ++k) {
        worker->pwrite(fh, static_cast<std::uint64_t>(k) * chunk.size(),
                       chunk);
      }
      std::vector<std::byte> back(chunk.size());
      worker->pread(fh, 0, back);
      worker->getattr(fh);
    }
    sim::ActorScope scope(mon_actor);
    auto snap = monitor->query_stats();
    if (!snap.ok()) {
      std::printf("stats query failed: %s\n", dafs::to_string(snap.error()));
      continue;
    }
    print_snapshot(snap.value());
  }

  {
    sim::ActorScope scope(work_actor);
    worker.reset();
  }
  sim::ActorScope scope(mon_actor);
  monitor.reset();
  return 0;
}
