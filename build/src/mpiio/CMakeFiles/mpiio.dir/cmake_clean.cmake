file(REMOVE_RECURSE
  "CMakeFiles/mpiio.dir/ad_dafs.cpp.o"
  "CMakeFiles/mpiio.dir/ad_dafs.cpp.o.d"
  "CMakeFiles/mpiio.dir/adio.cpp.o"
  "CMakeFiles/mpiio.dir/adio.cpp.o.d"
  "CMakeFiles/mpiio.dir/file.cpp.o"
  "CMakeFiles/mpiio.dir/file.cpp.o.d"
  "libmpiio.a"
  "libmpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
