# Empty compiler generated dependencies file for fstore.
# This may be replaced when dependencies are built.
