file(REMOVE_RECURSE
  "libfstore.a"
)
