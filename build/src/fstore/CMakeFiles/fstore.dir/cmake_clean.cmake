file(REMOVE_RECURSE
  "CMakeFiles/fstore.dir/file_store.cpp.o"
  "CMakeFiles/fstore.dir/file_store.cpp.o.d"
  "libfstore.a"
  "libfstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
