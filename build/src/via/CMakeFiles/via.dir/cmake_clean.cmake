file(REMOVE_RECURSE
  "CMakeFiles/via.dir/memory.cpp.o"
  "CMakeFiles/via.dir/memory.cpp.o.d"
  "CMakeFiles/via.dir/nic.cpp.o"
  "CMakeFiles/via.dir/nic.cpp.o.d"
  "CMakeFiles/via.dir/vi.cpp.o"
  "CMakeFiles/via.dir/vi.cpp.o.d"
  "libvia.a"
  "libvia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
