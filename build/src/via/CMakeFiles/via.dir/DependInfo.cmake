
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/via/memory.cpp" "src/via/CMakeFiles/via.dir/memory.cpp.o" "gcc" "src/via/CMakeFiles/via.dir/memory.cpp.o.d"
  "/root/repo/src/via/nic.cpp" "src/via/CMakeFiles/via.dir/nic.cpp.o" "gcc" "src/via/CMakeFiles/via.dir/nic.cpp.o.d"
  "/root/repo/src/via/vi.cpp" "src/via/CMakeFiles/via.dir/vi.cpp.o" "gcc" "src/via/CMakeFiles/via.dir/vi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
