file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/actor.cpp.o"
  "CMakeFiles/sim.dir/actor.cpp.o.d"
  "CMakeFiles/sim.dir/fabric.cpp.o"
  "CMakeFiles/sim.dir/fabric.cpp.o.d"
  "libsim.a"
  "libsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
