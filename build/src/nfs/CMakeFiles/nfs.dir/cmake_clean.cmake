file(REMOVE_RECURSE
  "CMakeFiles/nfs.dir/client.cpp.o"
  "CMakeFiles/nfs.dir/client.cpp.o.d"
  "CMakeFiles/nfs.dir/server.cpp.o"
  "CMakeFiles/nfs.dir/server.cpp.o.d"
  "CMakeFiles/nfs.dir/tcp.cpp.o"
  "CMakeFiles/nfs.dir/tcp.cpp.o.d"
  "libnfs.a"
  "libnfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
