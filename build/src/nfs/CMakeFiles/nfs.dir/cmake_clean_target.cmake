file(REMOVE_RECURSE
  "libnfs.a"
)
