# Empty dependencies file for nfs.
# This may be replaced when dependencies are built.
