file(REMOVE_RECURSE
  "libmpi.a"
)
