file(REMOVE_RECURSE
  "CMakeFiles/mpi.dir/datatype.cpp.o"
  "CMakeFiles/mpi.dir/datatype.cpp.o.d"
  "CMakeFiles/mpi.dir/runtime.cpp.o"
  "CMakeFiles/mpi.dir/runtime.cpp.o.d"
  "libmpi.a"
  "libmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
