# Empty dependencies file for mpi.
# This may be replaced when dependencies are built.
