file(REMOVE_RECURSE
  "libdafs.a"
)
