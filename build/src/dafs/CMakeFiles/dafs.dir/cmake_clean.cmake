file(REMOVE_RECURSE
  "CMakeFiles/dafs.dir/client.cpp.o"
  "CMakeFiles/dafs.dir/client.cpp.o.d"
  "CMakeFiles/dafs.dir/server.cpp.o"
  "CMakeFiles/dafs.dir/server.cpp.o.d"
  "libdafs.a"
  "libdafs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dafs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
