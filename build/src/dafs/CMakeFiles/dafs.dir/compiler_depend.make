# Empty compiler generated dependencies file for dafs.
# This may be replaced when dependencies are built.
