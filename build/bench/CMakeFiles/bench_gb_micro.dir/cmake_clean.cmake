file(REMOVE_RECURSE
  "CMakeFiles/bench_gb_micro.dir/bench_gb_micro.cpp.o"
  "CMakeFiles/bench_gb_micro.dir/bench_gb_micro.cpp.o.d"
  "bench_gb_micro"
  "bench_gb_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gb_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
