# Empty compiler generated dependencies file for bench_gb_micro.
# This may be replaced when dependencies are built.
