file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_via_latency.dir/bench_e1_via_latency.cpp.o"
  "CMakeFiles/bench_e1_via_latency.dir/bench_e1_via_latency.cpp.o.d"
  "bench_e1_via_latency"
  "bench_e1_via_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_via_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
