file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_async.dir/bench_e11_async.cpp.o"
  "CMakeFiles/bench_e11_async.dir/bench_e11_async.cpp.o.d"
  "bench_e11_async"
  "bench_e11_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
