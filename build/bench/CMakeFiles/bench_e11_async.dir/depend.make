# Empty dependencies file for bench_e11_async.
# This may be replaced when dependencies are built.
