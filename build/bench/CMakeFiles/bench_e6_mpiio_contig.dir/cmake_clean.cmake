file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_mpiio_contig.dir/bench_e6_mpiio_contig.cpp.o"
  "CMakeFiles/bench_e6_mpiio_contig.dir/bench_e6_mpiio_contig.cpp.o.d"
  "bench_e6_mpiio_contig"
  "bench_e6_mpiio_contig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_mpiio_contig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
