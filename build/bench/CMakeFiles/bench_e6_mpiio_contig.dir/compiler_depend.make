# Empty compiler generated dependencies file for bench_e6_mpiio_contig.
# This may be replaced when dependencies are built.
