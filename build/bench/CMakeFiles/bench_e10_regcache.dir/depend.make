# Empty dependencies file for bench_e10_regcache.
# This may be replaced when dependencies are built.
