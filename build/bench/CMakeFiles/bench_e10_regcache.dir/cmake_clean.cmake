file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_regcache.dir/bench_e10_regcache.cpp.o"
  "CMakeFiles/bench_e10_regcache.dir/bench_e10_regcache.cpp.o.d"
  "bench_e10_regcache"
  "bench_e10_regcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_regcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
