file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_scaling.dir/bench_e9_scaling.cpp.o"
  "CMakeFiles/bench_e9_scaling.dir/bench_e9_scaling.cpp.o.d"
  "bench_e9_scaling"
  "bench_e9_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
