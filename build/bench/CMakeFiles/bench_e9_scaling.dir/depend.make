# Empty dependencies file for bench_e9_scaling.
# This may be replaced when dependencies are built.
