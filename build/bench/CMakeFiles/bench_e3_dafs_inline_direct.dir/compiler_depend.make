# Empty compiler generated dependencies file for bench_e3_dafs_inline_direct.
# This may be replaced when dependencies are built.
