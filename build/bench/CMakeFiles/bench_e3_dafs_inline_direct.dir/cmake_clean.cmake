file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_dafs_inline_direct.dir/bench_e3_dafs_inline_direct.cpp.o"
  "CMakeFiles/bench_e3_dafs_inline_direct.dir/bench_e3_dafs_inline_direct.cpp.o.d"
  "bench_e3_dafs_inline_direct"
  "bench_e3_dafs_inline_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_dafs_inline_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
