file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_hints.dir/bench_e12_hints.cpp.o"
  "CMakeFiles/bench_e12_hints.dir/bench_e12_hints.cpp.o.d"
  "bench_e12_hints"
  "bench_e12_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
