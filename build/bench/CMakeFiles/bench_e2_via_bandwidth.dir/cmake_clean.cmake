file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_via_bandwidth.dir/bench_e2_via_bandwidth.cpp.o"
  "CMakeFiles/bench_e2_via_bandwidth.dir/bench_e2_via_bandwidth.cpp.o.d"
  "bench_e2_via_bandwidth"
  "bench_e2_via_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_via_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
