# Empty compiler generated dependencies file for bench_e2_via_bandwidth.
# This may be replaced when dependencies are built.
