# Empty compiler generated dependencies file for bench_e4_dafs_vs_nfs.
# This may be replaced when dependencies are built.
