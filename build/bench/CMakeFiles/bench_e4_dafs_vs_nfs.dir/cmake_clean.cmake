file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_dafs_vs_nfs.dir/bench_e4_dafs_vs_nfs.cpp.o"
  "CMakeFiles/bench_e4_dafs_vs_nfs.dir/bench_e4_dafs_vs_nfs.cpp.o.d"
  "bench_e4_dafs_vs_nfs"
  "bench_e4_dafs_vs_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_dafs_vs_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
