file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_collective.dir/bench_e7_collective.cpp.o"
  "CMakeFiles/bench_e7_collective.dir/bench_e7_collective.cpp.o.d"
  "bench_e7_collective"
  "bench_e7_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
