# Empty dependencies file for bench_e5_cpu_overhead.
# This may be replaced when dependencies are built.
