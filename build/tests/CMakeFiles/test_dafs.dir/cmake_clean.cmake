file(REMOVE_RECURSE
  "CMakeFiles/test_dafs.dir/test_dafs.cpp.o"
  "CMakeFiles/test_dafs.dir/test_dafs.cpp.o.d"
  "test_dafs"
  "test_dafs.pdb"
  "test_dafs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dafs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
