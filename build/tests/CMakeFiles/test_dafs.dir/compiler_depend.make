# Empty compiler generated dependencies file for test_dafs.
# This may be replaced when dependencies are built.
