file(REMOVE_RECURSE
  "CMakeFiles/test_fstore.dir/test_fstore.cpp.o"
  "CMakeFiles/test_fstore.dir/test_fstore.cpp.o.d"
  "test_fstore"
  "test_fstore.pdb"
  "test_fstore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
