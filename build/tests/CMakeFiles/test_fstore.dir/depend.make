# Empty dependencies file for test_fstore.
# This may be replaced when dependencies are built.
