# Empty compiler generated dependencies file for test_mpiio_unit.
# This may be replaced when dependencies are built.
