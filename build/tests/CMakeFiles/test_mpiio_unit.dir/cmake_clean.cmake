file(REMOVE_RECURSE
  "CMakeFiles/test_mpiio_unit.dir/test_mpiio_unit.cpp.o"
  "CMakeFiles/test_mpiio_unit.dir/test_mpiio_unit.cpp.o.d"
  "test_mpiio_unit"
  "test_mpiio_unit.pdb"
  "test_mpiio_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpiio_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
