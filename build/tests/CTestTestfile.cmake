# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_via[1]_include.cmake")
include("/root/repo/build/tests/test_fstore[1]_include.cmake")
include("/root/repo/build/tests/test_dafs[1]_include.cmake")
include("/root/repo/build/tests/test_nfs[1]_include.cmake")
include("/root/repo/build/tests/test_datatype[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_mpiio[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_mpiio_unit[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
