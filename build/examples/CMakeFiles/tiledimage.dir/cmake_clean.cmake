file(REMOVE_RECURSE
  "CMakeFiles/tiledimage.dir/tiledimage.cpp.o"
  "CMakeFiles/tiledimage.dir/tiledimage.cpp.o.d"
  "tiledimage"
  "tiledimage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiledimage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
