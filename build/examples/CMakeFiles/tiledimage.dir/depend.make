# Empty dependencies file for tiledimage.
# This may be replaced when dependencies are built.
