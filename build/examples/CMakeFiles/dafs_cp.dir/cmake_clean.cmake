file(REMOVE_RECURSE
  "CMakeFiles/dafs_cp.dir/dafs_cp.cpp.o"
  "CMakeFiles/dafs_cp.dir/dafs_cp.cpp.o.d"
  "dafs_cp"
  "dafs_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dafs_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
