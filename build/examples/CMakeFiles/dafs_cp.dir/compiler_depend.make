# Empty compiler generated dependencies file for dafs_cp.
# This may be replaced when dependencies are built.
