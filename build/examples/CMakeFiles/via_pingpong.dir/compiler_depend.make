# Empty compiler generated dependencies file for via_pingpong.
# This may be replaced when dependencies are built.
