file(REMOVE_RECURSE
  "CMakeFiles/via_pingpong.dir/via_pingpong.cpp.o"
  "CMakeFiles/via_pingpong.dir/via_pingpong.cpp.o.d"
  "via_pingpong"
  "via_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/via_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
