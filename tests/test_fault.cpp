#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"

/// \file test_fault.cpp
/// Fault-injection stress suite (ctest label `fault`): the seeded FaultPlan
/// drives transfer drops, scheduled connection breaks, registration failures
/// and storage errors against DAFS sessions and the MPI-IO layers above, and
/// every scenario must end with byte-exact file contents, exactly-once side
/// effects, and — when recovery is exhausted — the same MPI error class on
/// every rank instead of a hang.

namespace {

using dafs::PStatus;
using mpi::Comm;
using mpi::Datatype;
using mpiio::Err;
using mpiio::ErrClass;
using mpiio::File;
using mpiio::Info;
using sim::Actor;
using sim::ActorScope;

constexpr std::uint64_t kChunk = 32 * 1024;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

/// Mount tuned for tests: short (virtual-time) backoffs, per-rank jitter
/// seeds.
dafs::MountSpec recovery_cfg(std::uint64_t seed, int rank) {
  dafs::RetryPolicy retry;
  retry.backoff_ns = 20'000;
  retry.backoff_cap_ns = 2'000'000;
  retry.jitter_seed = seed * 131 + static_cast<std::uint64_t>(rank);
  return dafs::single_mount("dafs", retry);
}

// ---------------------------------------------------------------------------
// FaultPlan determinism
// ---------------------------------------------------------------------------

TEST(Fault, SameSeedSameSchedule) {
  sim::Fabric fabric;
  const auto a = fabric.add_node("a");
  const auto b = fabric.add_node("b");
  auto& plan = fabric.faults();

  auto sample = [&](std::uint64_t seed) {
    plan.arm(seed);
    plan.set_drop_prob(0.4);
    plan.set_duplicate_prob(0.2);
    std::vector<int> verdicts;
    for (int i = 0; i < 64; ++i) {
      const auto f = plan.on_transfer("conn", a, b);
      verdicts.push_back((f.drop ? 1 : 0) | (f.duplicate ? 2 : 0));
    }
    return verdicts;
  };

  const auto first = sample(7);
  const auto again = sample(7);
  const auto other = sample(8);
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);
  plan.clear();
}

// ---------------------------------------------------------------------------
// Seed x fault-mode sweep against independent and collective MPI-IO
// ---------------------------------------------------------------------------

enum class Mode { kDrop, kDisconnect, kRegFail };

struct SweepCounters {
  std::uint64_t recoveries = 0;
  std::uint64_t conn_breaks = 0;
  std::uint64_t transfer_drops = 0;
  std::uint64_t replay_hits = 0;
  std::uint64_t reg_failures = 0;
};

/// One full scenario: a world of MPI ranks opens two files over DAFS, runs a
/// collective and an independent write and read with the fault plan armed,
/// then disarms it and verifies every byte — through MPI-IO and with a raw
/// whole-file read. Operations that surface an (agreed) error are retried by
/// the application, which must converge once recovery or the armed fault
/// budget runs out.
SweepCounters run_faulted_world(Mode mode, std::uint64_t seed) {
  // Registration faults have no node/connection filter, so they would also
  // hit the MPI runtime's transfer registrations; that mode runs single-rank
  // (no rank-to-rank traffic) and still exercises both MPI-IO entry points.
  const int nprocs = mode == Mode::kRegFail ? 1 : 4;

  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();

  mpi::WorldConfig wcfg;
  wcfg.nprocs = nprocs;
  wcfg.fabric = &fabric;
  wcfg.name = "fw";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session =
        std::move(dafs::Session::connect(nic, recovery_cfg(seed, c.rank()))
                      .value());
    auto fc = std::move(File::open(c, "/col.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*session))
                            .value());
    auto fi = std::move(File::open(c, "/ind.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*session))
                            .value());

    c.barrier();
    if (c.rank() == 0) {
      auto& plan = fabric.faults();
      plan.arm(seed);
      switch (mode) {
        case Mode::kDrop:
          // Only DAFS connections: MPI rank-to-rank traffic stays clean.
          plan.restrict_to_conn("dafs");
          plan.set_drop_prob(0.05);
          break;
        case Mode::kDisconnect:
          plan.break_conn_after("dafs", 5 + seed * 3);
          break;
        case Mode::kRegFail:
          plan.fail_next_registrations(1 + seed % 3);
          break;
      }
    }
    c.barrier();

    const std::uint64_t off = c.rank() * kChunk;
    const auto dc = pattern(kChunk, 1000 + seed * 10 + c.rank());
    const auto di = pattern(kChunk, 2000 + seed * 10 + c.rank());

    // Collective retries are symmetric: finish_collective agrees on the
    // status, so every rank sees the same verdict each attempt.
    bool ok = false;
    for (int t = 0; t < 6 && !ok; ++t) {
      ok = fc->write_at_all(off, dc.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "collective write, seed " << seed;

    ok = false;
    for (int t = 0; t < 6 && !ok; ++t) {
      ok = fi->write_at(off, di.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "independent write, seed " << seed;

    // Reads under the same fault plan: recovery must hand back exact bytes.
    std::vector<std::byte> back(kChunk);
    ok = false;
    for (int t = 0; t < 6 && !ok; ++t) {
      ok = fc->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "collective read, seed " << seed;
    EXPECT_EQ(std::memcmp(back.data(), dc.data(), kChunk), 0);

    ok = false;
    for (int t = 0; t < 6 && !ok; ++t) {
      ok = fi->read_at(off, back.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "independent read, seed " << seed;
    EXPECT_EQ(std::memcmp(back.data(), di.data(), kChunk), 0);

    c.barrier();
    if (c.rank() == 0) fabric.faults().clear();
    c.barrier();

    fc->close();
    fi->close();
  });

  // Raw whole-file verification with a pristine session.
  {
    const auto node = fabric.add_node("verify");
    Actor actor("verify", &fabric.node(node));
    ActorScope scope(actor);
    via::Nic nic(fabric, node, "vnic");
    auto s = std::move(dafs::Session::connect(nic).value());
    for (const char* path : {"/col.dat", "/ind.dat"}) {
      auto fh = s->open(path).value();
      const std::uint64_t base =
          std::string_view(path) == "/col.dat" ? 1000 : 2000;
      EXPECT_EQ(s->getattr(fh).value().size,
                static_cast<std::uint64_t>(nprocs) * kChunk);
      std::vector<std::byte> all(static_cast<std::size_t>(nprocs) * kChunk);
      auto raw = s->pread(fh, 0, all);
      EXPECT_TRUE(raw.ok());
      if (!raw.ok()) continue;
      for (int r = 0; r < nprocs; ++r) {
        const auto expect = pattern(kChunk, base + seed * 10 + r);
        EXPECT_EQ(std::memcmp(all.data() + r * kChunk, expect.data(), kChunk),
                  0)
            << path << " rank " << r << " seed " << seed;
      }
    }
    s.reset();
  }

  SweepCounters out;
  out.recoveries = fabric.stats().get("dafs.recoveries");
  out.conn_breaks = fabric.stats().get("fault.conn_breaks");
  out.transfer_drops = fabric.stats().get("fault.transfer_drops");
  out.replay_hits = fabric.stats().get("dafs.replay_hits");
  out.reg_failures = fabric.stats().get("fault.reg_failures");
  return out;
}

TEST(Fault, SeedSweepTransferDrops) {
  SweepCounters total;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto c = run_faulted_world(Mode::kDrop, seed);
    total.recoveries += c.recoveries;
    total.transfer_drops += c.transfer_drops;
  }
  // Dropped reliable transfers break the connection; across 8 seeds at 5%
  // the recovery path must have run.
  EXPECT_GE(total.transfer_drops, 1u);
  EXPECT_GE(total.recoveries, 1u);
}

TEST(Fault, SeedSweepDisconnectAfterN) {
  SweepCounters total;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto c = run_faulted_world(Mode::kDisconnect, seed);
    total.recoveries += c.recoveries;
    total.conn_breaks += c.conn_breaks;
  }
  EXPECT_GE(total.conn_breaks, 4u);
  EXPECT_GE(total.recoveries, 4u);
}

TEST(Fault, SeedSweepRegistrationFailures) {
  SweepCounters total;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto c = run_faulted_world(Mode::kRegFail, seed);
    total.reg_failures += c.reg_failures;
  }
  EXPECT_GE(total.reg_failures, 8u);
}

// ---------------------------------------------------------------------------
// Acceptance: 4-rank collective write across a mid-transfer VI break
// ---------------------------------------------------------------------------

TEST(Fault, CollectiveWriteSurvivesMidTransferBreak) {
  std::uint64_t breaks_total = 0;
  std::uint64_t replay_total = 0;
  // Sweep the break position across the first request/response completions
  // of the collective's disk phase, so the connection dies at every point of
  // a write's life: request sent, request received, response sent.
  for (std::uint64_t nth = 1; nth <= 14; ++nth) {
    sim::Fabric fabric;
    dafs::Server server(fabric, fabric.add_node("filer"));
    server.start();
    mpi::WorldConfig wcfg;
    wcfg.nprocs = 4;
    wcfg.fabric = &fabric;
    wcfg.name = "acc";
    mpi::World world(wcfg);
    world.run([&](Comm& c) {
      via::Nic nic(fabric, world.node_of(c.rank()), "cli");
      auto session =
          std::move(dafs::Session::connect(nic, recovery_cfg(nth, c.rank()))
                        .value());
      auto f = std::move(File::open(c, "/acc.dat",
                                    mpiio::kModeCreate | mpiio::kModeRdwr,
                                    Info{}, mpiio::dafs_driver(*session))
                             .value());
      c.barrier();
      // Armed after open: the Nth completion lands inside the collective.
      if (c.rank() == 0) {
        fabric.faults().arm(nth);
        fabric.faults().break_conn_after("dafs", nth);
      }
      c.barrier();

      const auto data = pattern(kChunk, 500 + nth * 10 + c.rank());
      auto w = f->write_at_all(c.rank() * kChunk, data.data(), kChunk,
                               Datatype::byte());
      ASSERT_TRUE(w.ok()) << "nth=" << nth << " rank=" << c.rank();
      EXPECT_EQ(w.value(), kChunk);

      c.barrier();
      if (c.rank() == 0) fabric.faults().clear();
      c.barrier();

      std::vector<std::byte> back(kChunk);
      ASSERT_TRUE(
          f->read_at_all(c.rank() * kChunk, back.data(), kChunk,
                         Datatype::byte())
              .ok());
      EXPECT_EQ(std::memcmp(back.data(), data.data(), kChunk), 0);
      f->close();
    });
    breaks_total += fabric.stats().get("fault.conn_breaks");
    replay_total += fabric.stats().get("dafs.replay_hits") +
                    server.store().stats().get("fstore.dup_filter_hits");
  }
  // The sweep must actually have broken connections, and at least one break
  // must have landed after the server executed a request but before the
  // client saw the response. The retransmission is then served by one of the
  // two exactly-once backstops: the per-session replay cache when the session
  // survived the break, or the durable (client_id, seq) dup filter when the
  // break forced a full session reclaim first — which of the two fires
  // depends on whether the server reaped the session during the client's
  // reconnect backoff, so the test must accept either.
  EXPECT_GE(breaks_total, 4u);
  EXPECT_GE(replay_total, 1u);
}

// ---------------------------------------------------------------------------
// Exactly-once side effects
// ---------------------------------------------------------------------------

TEST(Fault, RetransmitAfterBreakIsExactlyOnce) {
  std::uint64_t replay_total = 0;
  for (std::uint64_t nth = 1; nth <= 16; ++nth) {
    sim::Fabric fabric;
    dafs::Server server(fabric, fabric.add_node("filer"));
    server.start();
    const auto node = fabric.add_node("client");
    Actor actor("client", &fabric.node(node));
    ActorScope scope(actor);
    via::Nic nic(fabric, node, "nic");
    auto s = std::move(
        dafs::Session::connect(nic, recovery_cfg(nth, 0)).value());
    ASSERT_EQ(s->set_counter("ctr", 0), PStatus::kOk);

    fabric.faults().arm(nth);
    fabric.faults().break_conn_after("dafs", nth);
    for (int i = 0; i < 10; ++i) {
      auto r = s->fetch_add("ctr", 7);
      ASSERT_TRUE(r.ok()) << "nth=" << nth << " op " << i;
    }
    fabric.faults().clear();

    // Whatever point the connection broke at — before the request arrived,
    // after execution but before the response, after the response — the
    // counter advanced exactly once per fetch_add.
    EXPECT_EQ(s->fetch_add("ctr", 0).value(), 70u) << "nth=" << nth;
    // A retransmit of an already-executed fetch_add is absorbed by either
    // exactly-once backstop: the session replay cache (session survived) or
    // the durable dup filter (session was reaped and reclaimed while the
    // client backed off — common under sanitizer-slowed runs).
    replay_total += fabric.stats().get("dafs.replay_hits") +
                    server.store().stats().get("fstore.dup_filter_hits");
    s.reset();
  }
  EXPECT_GE(replay_total, 1u);
}

TEST(Fault, DuplicateDeliveryIsExactlyOnce) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());
  ASSERT_EQ(s->set_counter("ctr", 0), PStatus::kOk);

  auto& plan = fabric.faults();
  plan.arm(11);
  plan.restrict_to_conn("dafs");
  plan.set_duplicate_prob(1.0);  // every message delivered twice

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(s->fetch_add("ctr", 10).ok());
  }
  plan.clear();

  EXPECT_EQ(s->fetch_add("ctr", 0).value(), 100u);
  // Duplicate requests were answered from the replay cache, and duplicate
  // responses were recognized as stale and dropped.
  EXPECT_GE(fabric.stats().get("dafs.replay_hits"), 1u);
  EXPECT_GE(fabric.stats().get("dafs.stale_responses"), 1u);
  s.reset();
}

// ---------------------------------------------------------------------------
// Resource and storage faults surface as typed errors
// ---------------------------------------------------------------------------

TEST(Fault, RegistrationFailureSurfacesAsNoResource) {
  static_assert(mpiio::error_class(Err::kNoResource) == ErrClass::kNoSpace);
  static_assert(mpiio::error_class(Err::kConnLost) == ErrClass::kIo);
  static_assert(mpiio::error_class(Err::kLockConflict) == ErrClass::kAccess);

  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());
  auto fh = s->open("/r.dat", dafs::kOpenCreate).value();

  const auto data = pattern(64 * 1024, 21);  // direct path: needs registration
  fabric.faults().arm(21);
  fabric.faults().fail_next_registrations(1);
  auto r = s->pwrite(fh, 0, data);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), PStatus::kNoResource);
  EXPECT_EQ(mpiio::error_class(r.error()), ErrClass::kNoSpace);
  EXPECT_EQ(fabric.stats().get("fault.reg_failures"), 1u);

  // The session survives a resource failure; the retry registers cleanly.
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());
  fabric.faults().clear();
  std::vector<std::byte> back(data.size());
  ASSERT_TRUE(s->pread(fh, 0, back).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);
  s.reset();
}

TEST(Fault, FstoreFaultsSurfaceAsIoErrors) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());
  auto fh = s->open("/io.dat", dafs::kOpenCreate).value();
  const auto data = pattern(64 * 1024, 31);
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());

  // Outright read failure: inline and direct paths both map to kIo.
  std::vector<std::byte> back(2048);
  fabric.faults().arm(31);
  fabric.faults().fail_next_fstore_reads(1);
  auto r = s->pread(fh, 0, back);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), PStatus::kIo);
  EXPECT_EQ(mpiio::error_class(r.error()), ErrClass::kIo);

  back.resize(64 * 1024);
  fabric.faults().fail_next_fstore_reads(1);
  auto rd = s->pread(fh, 0, back);  // direct path
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.error(), PStatus::kIo);
  EXPECT_GE(server.store().stats().get("fault.fstore_read_errors"), 2u);

  // Short reads: fewer bytes than asked, never zero, contents still exact.
  fabric.faults().set_short_read_prob(1.0);
  back.assign(2048, std::byte{0});
  auto sr = s->pread(fh, 0, back);
  ASSERT_TRUE(sr.ok());
  EXPECT_GE(sr.value(), 1u);
  EXPECT_LT(sr.value(), 2048u);
  EXPECT_EQ(std::memcmp(back.data(), data.data(), sr.value()), 0);

  fabric.faults().clear();
  back.assign(64 * 1024, std::byte{0});
  ASSERT_TRUE(s->pread(fh, 0, back).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);
  s.reset();
}

// ---------------------------------------------------------------------------
// Exhausted retries: every rank agrees on the error class, nobody hangs
// ---------------------------------------------------------------------------

TEST(Fault, ExhaustedRetriesAgreeOnErrorClass) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  mpi::WorldConfig wcfg;
  wcfg.nprocs = 4;
  wcfg.fabric = &fabric;
  wcfg.name = "ex";
  mpi::World world(wcfg);

  std::array<ErrClass, 4> wclass{};
  std::array<ErrClass, 4> rclass{};
  world.run([&](Comm& c) {
    dafs::MountSpec mspec = recovery_cfg(99, c.rank());
    mspec.endpoints[0].retry.attempts = 2;  // exhaust quickly
    mspec.endpoints[0].retry.backoff_ns = 1'000;
    mspec.endpoints[0].retry.backoff_cap_ns = 4'000;
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic, mspec).value());
    auto f = std::move(File::open(c, "/dead.dat",
                                  mpiio::kModeCreate | mpiio::kModeRdwr,
                                  Info{}, mpiio::dafs_driver(*session))
                           .value());
    c.barrier();
    if (c.rank() == 0) {
      fabric.faults().arm(99);
      // Every 2nd completion on any DAFS connection kills that connection,
      // including during resume handshakes: recovery cannot win.
      fabric.faults().break_conn_after("dafs", 2, /*repeat=*/true);
    }
    c.barrier();

    const auto data = pattern(kChunk, 600 + c.rank());
    auto w = f->write_at_all(c.rank() * kChunk, data.data(), kChunk,
                             Datatype::byte());
    EXPECT_FALSE(w.ok());
    wclass[static_cast<std::size_t>(c.rank())] =
        w.ok() ? ErrClass::kSuccess : mpiio::error_class(w.error());

    // The collective read path must also exit collectively — a failed
    // aggregator still feeds the reply exchange instead of stranding peers.
    std::vector<std::byte> back(kChunk);
    auto r = f->read_at_all(c.rank() * kChunk, back.data(), kChunk,
                            Datatype::byte());
    EXPECT_FALSE(r.ok());
    rclass[static_cast<std::size_t>(c.rank())] =
        r.ok() ? ErrClass::kSuccess : mpiio::error_class(r.error());

    c.barrier();
    if (c.rank() == 0) fabric.faults().clear();
    // Destructors disconnect dead sessions; errors are counted, not thrown.
  });

  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(wclass[0], wclass[static_cast<std::size_t>(i)]);
    EXPECT_EQ(rclass[0], rclass[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(wclass[0], ErrClass::kIo);  // kConnLost => MPI_ERR_IO
  EXPECT_EQ(rclass[0], ErrClass::kIo);
  EXPECT_GE(fabric.stats().get("dafs.recovery_failures"), 1u);
}

}  // namespace
