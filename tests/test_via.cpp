#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "sim/actor.hpp"
#include "sim/fabric.hpp"
#include "via/vi.hpp"

namespace {

using namespace std::chrono_literals;
using sim::Actor;
using sim::ActorScope;
using sim::Fabric;
using via::CompletionQueue;
using via::DataSegment;
using via::Descriptor;
using via::DescStatus;
using via::Listener;
using via::MemAttrs;
using via::MemHandle;
using via::Nic;
using via::Opcode;
using via::ProtectionTag;
using via::ReliabilityLevel;
using via::Status;
using via::Vi;
using via::ViAttrs;

constexpr auto kWait = 2000ms;

/// Two nodes, two NICs, a connected VI pair, and an actor per side.
class ViaPairTest : public ::testing::Test {
 protected:
  ViaPairTest()
      : na_(fabric_.add_node("client")),
        nb_(fabric_.add_node("server")),
        nic_a_(fabric_, na_, "nicA"),
        nic_b_(fabric_, nb_, "nicB"),
        actor_a_("client", &fabric_.node(na_)),
        actor_b_("server", &fabric_.node(nb_)) {}

  void Connect(ViAttrs attrs = {}, CompletionQueue* send_cq_a = nullptr,
               CompletionQueue* recv_cq_a = nullptr,
               CompletionQueue* send_cq_b = nullptr,
               CompletionQueue* recv_cq_b = nullptr) {
    vi_a_ = std::make_unique<Vi>(nic_a_, attrs, send_cq_a, recv_cq_a);
    vi_b_ = std::make_unique<Vi>(nic_b_, attrs, send_cq_b, recv_cq_b);
    Listener lis(nic_b_, "svc");
    std::thread server([&] {
      ActorScope scope(actor_b_);
      ASSERT_EQ(lis.accept(*vi_b_, kWait), Status::kSuccess);
    });
    {
      ActorScope scope(actor_a_);
      ASSERT_EQ(nic_a_.connect(*vi_a_, "svc", kWait), Status::kSuccess);
    }
    server.join();
  }

  MemHandle Register(Nic& nic, Actor& actor, void* p, std::size_t n,
                     MemAttrs attrs = {}) {
    ActorScope scope(actor);
    return nic.register_memory(p, n, nic.create_ptag(), attrs);
  }

  Fabric fabric_;
  sim::NodeId na_, nb_;
  Nic nic_a_, nic_b_;
  Actor actor_a_, actor_b_;
  std::unique_ptr<Vi> vi_a_, vi_b_;
};

// ---------------------------------------------------------------------------
// Memory registration
// ---------------------------------------------------------------------------

TEST_F(ViaPairTest, RegisterValidateDeregister) {
  std::vector<std::byte> buf(4096);
  const MemHandle h = Register(nic_a_, actor_a_, buf.data(), buf.size());
  EXPECT_NE(h, via::kInvalidMemHandle);
  EXPECT_TRUE(nic_a_.memory().validate_local(h, buf.data(), buf.size()));
  EXPECT_TRUE(nic_a_.memory().validate_local(h, buf.data() + 100, 10));
  EXPECT_FALSE(nic_a_.memory().validate_local(h, buf.data() + 1, buf.size()));
  EXPECT_FALSE(nic_a_.memory().validate_local(h + 99, buf.data(), 1));
  ActorScope scope(actor_a_);
  EXPECT_EQ(nic_a_.deregister_memory(h), Status::kSuccess);
  EXPECT_FALSE(nic_a_.memory().validate_local(h, buf.data(), 1));
  EXPECT_EQ(nic_a_.deregister_memory(h), Status::kInvalidParameter);
}

TEST_F(ViaPairTest, RegistrationChargesPinningCost) {
  std::vector<std::byte> buf(64 * 1024);
  const sim::Time before = actor_a_.busy()[sim::CostKind::kRegistration];
  Register(nic_a_, actor_a_, buf.data(), buf.size());
  const sim::Time after = actor_a_.busy()[sim::CostKind::kRegistration];
  EXPECT_EQ(after - before, fabric_.cost().reg_time(buf.size()));
}

TEST_F(ViaPairTest, RdmaValidationRespectsAccessFlags) {
  std::vector<std::byte> buf(4096);
  MemAttrs wr;
  wr.enable_rdma_write = true;
  const MemHandle h = Register(nic_a_, actor_a_, buf.data(), buf.size(), wr);
  const auto addr = reinterpret_cast<std::uint64_t>(buf.data());
  EXPECT_EQ(nic_a_.memory().validate_rdma(h, addr, 100, true),
            Status::kSuccess);
  EXPECT_EQ(nic_a_.memory().validate_rdma(h, addr, 100, false),
            Status::kInvalidRdmaOp);
  EXPECT_EQ(nic_a_.memory().validate_rdma(h, addr + 4000, 1000, true),
            Status::kInvalidMemory);
  EXPECT_EQ(nic_a_.memory().validate_rdma(h + 7, addr, 1, true),
            Status::kInvalidMemory);
}

// ---------------------------------------------------------------------------
// Connection management
// ---------------------------------------------------------------------------

TEST_F(ViaPairTest, ConnectAcceptEstablishesBothEnds) {
  Connect();
  EXPECT_TRUE(vi_a_->connected());
  EXPECT_TRUE(vi_b_->connected());
  EXPECT_GT(actor_a_.now(), 0u);
  EXPECT_GT(actor_b_.now(), 0u);
}

TEST_F(ViaPairTest, ConnectToUnknownServiceFails) {
  Vi vi(nic_a_, {});
  ActorScope scope(actor_a_);
  EXPECT_EQ(nic_a_.connect(vi, "nobody-home", 100ms),
            Status::kNoMatchingListener);
  EXPECT_FALSE(vi.connected());
}

TEST_F(ViaPairTest, ConnectTimesOutWithoutAccept) {
  Vi vi(nic_a_, {});
  Listener lis(nic_b_, "svc");
  ActorScope scope(actor_a_);
  EXPECT_EQ(nic_a_.connect(vi, "svc", 50ms), Status::kTimeout);
}

TEST_F(ViaPairTest, RejectRefusesConnection) {
  Vi vi(nic_a_, {});
  Listener lis(nic_b_, "svc");
  std::thread server([&] {
    ActorScope scope(actor_b_);
    EXPECT_EQ(lis.reject(kWait), Status::kSuccess);
  });
  ActorScope scope(actor_a_);
  EXPECT_EQ(nic_a_.connect(vi, "svc", kWait), Status::kRejected);
  server.join();
  EXPECT_FALSE(vi.connected());
}

TEST_F(ViaPairTest, ListenerDestructionRejectsWaiters) {
  Vi vi(nic_a_, {});
  auto lis = std::make_unique<Listener>(nic_b_, "svc");
  std::thread closer([&] {
    std::this_thread::sleep_for(50ms);
    lis.reset();
  });
  ActorScope scope(actor_a_);
  EXPECT_EQ(nic_a_.connect(vi, "svc", kWait), Status::kRejected);
  closer.join();
}

TEST_F(ViaPairTest, AcceptTimesOutWithNoConnector) {
  Vi vi(nic_b_, {});
  Listener lis(nic_b_, "svc");
  ActorScope scope(actor_b_);
  EXPECT_EQ(lis.accept(vi, 50ms), Status::kTimeout);
}

// ---------------------------------------------------------------------------
// Send / receive
// ---------------------------------------------------------------------------

TEST_F(ViaPairTest, SendDeliversBytesToPostedReceive) {
  Connect();
  std::vector<std::byte> src(1024), dst(1024);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i & 0xff);
  }
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  const MemHandle hd = Register(nic_b_, actor_b_, dst.data(), dst.size());

  Descriptor recv;
  recv.segs = {DataSegment{dst.data(), hd, 1024}};
  ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);

  Descriptor send;
  send.op = Opcode::kSend;
  send.segs = {DataSegment{src.data(), hs, 1024}};
  {
    ActorScope scope(actor_a_);
    ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
    Descriptor* done = nullptr;
    ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
    EXPECT_EQ(done, &send);
    EXPECT_EQ(done->status, DescStatus::kSuccess);
    EXPECT_EQ(done->length, 1024u);
  }
  {
    ActorScope scope(actor_b_);
    Descriptor* done = nullptr;
    ASSERT_EQ(vi_b_->recv_wait(done, kWait), Status::kSuccess);
    EXPECT_EQ(done, &recv);
    EXPECT_EQ(done->status, DescStatus::kSuccess);
    EXPECT_EQ(done->length, 1024u);
  }
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 1024), 0);
}

TEST_F(ViaPairTest, GatherScatterAcrossUnevenSegments) {
  Connect();
  std::vector<std::byte> s1(300), s2(724), d1(100), d2(512), d3(412);
  for (std::size_t i = 0; i < s1.size(); ++i) s1[i] = std::byte{0x5a};
  for (std::size_t i = 0; i < s2.size(); ++i) s2[i] = std::byte{0xa5};
  const MemHandle h1 = Register(nic_a_, actor_a_, s1.data(), s1.size());
  const MemHandle h2 = Register(nic_a_, actor_a_, s2.data(), s2.size());
  const MemHandle g1 = Register(nic_b_, actor_b_, d1.data(), d1.size());
  const MemHandle g2 = Register(nic_b_, actor_b_, d2.data(), d2.size());
  const MemHandle g3 = Register(nic_b_, actor_b_, d3.data(), d3.size());

  Descriptor recv;
  recv.segs = {DataSegment{d1.data(), g1, 100}, DataSegment{d2.data(), g2, 512},
               DataSegment{d3.data(), g3, 412}};
  ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);

  Descriptor send;
  send.segs = {DataSegment{s1.data(), h1, 300}, DataSegment{s2.data(), h2, 724}};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);

  // Reconstruct and compare the concatenated streams.
  std::vector<std::byte> expect;
  expect.insert(expect.end(), s1.begin(), s1.end());
  expect.insert(expect.end(), s2.begin(), s2.end());
  std::vector<std::byte> got;
  got.insert(got.end(), d1.begin(), d1.end());
  got.insert(got.end(), d2.begin(), d2.end());
  got.insert(got.end(), d3.begin(), d3.end());
  EXPECT_EQ(std::memcmp(expect.data(), got.data(), expect.size()), 0);
}

TEST_F(ViaPairTest, ImmediateDataTravelsWithSend) {
  Connect();
  Descriptor recv;
  ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);
  Descriptor send;
  send.has_immediate = true;
  send.immediate = 0xdeadbeef;
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  ActorScope scope_b(actor_b_);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_b_->recv_wait(done, kWait), Status::kSuccess);
  EXPECT_TRUE(done->recv_has_immediate);
  EXPECT_EQ(done->recv_immediate, 0xdeadbeefu);
  EXPECT_EQ(done->length, 0u);
}

TEST_F(ViaPairTest, SendLongerThanReceiveBufferErrorsBothSides) {
  Connect();
  std::vector<std::byte> src(2048), dst(512);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  const MemHandle hd = Register(nic_b_, actor_b_, dst.data(), dst.size());
  Descriptor recv;
  recv.segs = {DataSegment{dst.data(), hd, 512}};
  ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);
  Descriptor send;
  send.segs = {DataSegment{src.data(), hs, 2048}};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kFormatError);
  ActorScope scope_b(actor_b_);
  Descriptor* rdone = nullptr;
  ASSERT_EQ(vi_b_->recv_wait(rdone, kWait), Status::kSuccess);
  EXPECT_EQ(rdone->status, DescStatus::kFormatError);
}

TEST_F(ViaPairTest, UnregisteredSendSegmentCompletesWithProtectionError) {
  Connect();
  std::vector<std::byte> src(128);
  Descriptor send;
  send.segs = {DataSegment{src.data(), 12345, 128}};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kProtectionError);
}

TEST_F(ViaPairTest, PostRecvRejectsUnregisteredMemory) {
  Connect();
  std::vector<std::byte> dst(128);
  Descriptor recv;
  recv.segs = {DataSegment{dst.data(), 999, 128}};
  EXPECT_EQ(vi_b_->post_recv(recv), Status::kInvalidMemory);
}

TEST_F(ViaPairTest, PostSendOnIdleViFails) {
  Vi vi(nic_a_, {});
  Descriptor d;
  ActorScope scope(actor_a_);
  EXPECT_EQ(vi.post_send(d), Status::kInvalidState);
}

TEST_F(ViaPairTest, OversizedSendRejectedSynchronously) {
  ViAttrs attrs;
  attrs.max_transfer = 1024;
  Connect(attrs);
  std::vector<std::byte> src(2048);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  Descriptor send;
  send.segs = {DataSegment{src.data(), hs, 2048}};
  ActorScope scope(actor_a_);
  EXPECT_EQ(vi_a_->post_send(send), Status::kInvalidParameter);
}

TEST_F(ViaPairTest, MessagesArriveInPostOrder) {
  Connect();
  std::vector<std::byte> dst(16);
  const MemHandle hd = Register(nic_b_, actor_b_, dst.data(), dst.size());
  std::vector<std::byte> src(16);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());

  constexpr int kMsgs = 8;
  std::vector<Descriptor> recvs(kMsgs);
  for (auto& r : recvs) {
    r.segs = {DataSegment{dst.data(), hd, 16}};
    ASSERT_EQ(vi_b_->post_recv(r), Status::kSuccess);
  }
  std::vector<Descriptor> sends(kMsgs);
  ActorScope scope(actor_a_);
  for (int i = 0; i < kMsgs; ++i) {
    src[0] = static_cast<std::byte>(i);
    sends[i].segs = {DataSegment{src.data(), hs, 16}};
    ASSERT_EQ(vi_a_->post_send(sends[i]), Status::kSuccess);
  }
  ActorScope scope_b(actor_b_);
  sim::Time prev = 0;
  for (int i = 0; i < kMsgs; ++i) {
    Descriptor* done = nullptr;
    ASSERT_EQ(vi_b_->recv_wait(done, kWait), Status::kSuccess);
    EXPECT_EQ(done, &recvs[i]);  // FIFO on the VI
    EXPECT_GE(done->done_at, prev);
    prev = done->done_at;
  }
}

TEST_F(ViaPairTest, UnreliableViDropsWhenNoReceivePosted) {
  ViAttrs attrs;
  attrs.reliability = ReliabilityLevel::kUnreliable;
  Connect(attrs);
  std::vector<std::byte> src(64);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  Descriptor send;
  send.segs = {DataSegment{src.data(), hs, 64}};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  // Fire-and-forget: the sender sees a dropped-frame completion, the
  // connection stays up.
  EXPECT_EQ(done->status, DescStatus::kDropped);
  EXPECT_TRUE(vi_a_->connected());
  EXPECT_EQ(fabric_.stats().get("via.unreliable_drops"), 1u);
}

TEST_F(ViaPairTest, StrictModeBreaksConnectionWhenNoReceivePosted) {
  ViAttrs attrs;
  attrs.strict_no_recv_error = true;
  Connect(attrs);
  std::vector<std::byte> src(64);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  Descriptor send;
  send.segs = {DataSegment{src.data(), hs, 64}};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kFlushed);
  EXPECT_EQ(vi_a_->state(), Vi::State::kError);
  EXPECT_EQ(vi_b_->state(), Vi::State::kError);
}

TEST_F(ViaPairTest, LenientModeWaitsForLateReceive) {
  Connect();
  std::vector<std::byte> src(64), dst(64);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  const MemHandle hd = Register(nic_b_, actor_b_, dst.data(), dst.size());
  Descriptor recv;
  recv.segs = {DataSegment{dst.data(), hd, 64}};
  std::thread late([&] {
    std::this_thread::sleep_for(100ms);
    ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);
  });
  Descriptor send;
  send.segs = {DataSegment{src.data(), hs, 64}};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kSuccess);
  late.join();
}

TEST_F(ViaPairTest, DisconnectFlushesPostedReceives) {
  Connect();
  std::vector<std::byte> dst(64);
  const MemHandle hd = Register(nic_b_, actor_b_, dst.data(), dst.size());
  Descriptor recv;
  recv.segs = {DataSegment{dst.data(), hd, 64}};
  ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);
  {
    ActorScope scope(actor_a_);
    vi_a_->disconnect();
  }
  ActorScope scope(actor_b_);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_b_->recv_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kFlushed);
  EXPECT_EQ(vi_b_->state(), Vi::State::kDisconnected);
}

TEST_F(ViaPairTest, SendAfterPeerDisconnectFailsSynchronously) {
  Connect();
  {
    ActorScope scope(actor_b_);
    vi_b_->disconnect();
  }
  // The disconnect propagated: this endpoint is no longer connected and the
  // post is refused up front (VIPL VIP_ERROR_STATE behaviour).
  EXPECT_EQ(vi_a_->state(), Vi::State::kDisconnected);
  std::vector<std::byte> src(64);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  Descriptor send;
  send.segs = {DataSegment{src.data(), hs, 64}};
  ActorScope scope(actor_a_);
  EXPECT_EQ(vi_a_->post_send(send), Status::kInvalidState);
}

// ---------------------------------------------------------------------------
// RDMA
// ---------------------------------------------------------------------------

TEST_F(ViaPairTest, RdmaWritePlacesDataWithoutReceiveDescriptor) {
  Connect();
  std::vector<std::byte> src(4096), dst(4096);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 7 & 0xff);
  }
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  MemAttrs attrs;
  attrs.enable_rdma_write = true;
  const MemHandle hd =
      Register(nic_b_, actor_b_, dst.data(), dst.size(), attrs);

  Descriptor w;
  w.op = Opcode::kRdmaWrite;
  w.segs = {DataSegment{src.data(), hs, 4096}};
  w.remote = {reinterpret_cast<std::uint64_t>(dst.data()), hd};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(w), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kSuccess);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 4096), 0);
  EXPECT_EQ(fabric_.stats().get("via.rdma_writes"), 1u);
}

TEST_F(ViaPairTest, RdmaWriteWithImmediateConsumesReceive) {
  Connect();
  std::vector<std::byte> src(256), dst(256);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  MemAttrs attrs;
  attrs.enable_rdma_write = true;
  const MemHandle hd =
      Register(nic_b_, actor_b_, dst.data(), dst.size(), attrs);

  Descriptor recv;  // zero data segments: notification only
  ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);

  Descriptor w;
  w.op = Opcode::kRdmaWrite;
  w.segs = {DataSegment{src.data(), hs, 256}};
  w.remote = {reinterpret_cast<std::uint64_t>(dst.data()), hd};
  w.has_immediate = true;
  w.immediate = 42;
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(w), Status::kSuccess);
  ActorScope scope_b(actor_b_);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_b_->recv_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->recv_immediate, 42u);
  EXPECT_EQ(done->length, 256u);  // reports the RDMA length
}

TEST_F(ViaPairTest, RdmaWriteWithoutPermissionFails) {
  Connect();
  std::vector<std::byte> src(64), dst(64);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  const MemHandle hd = Register(nic_b_, actor_b_, dst.data(), dst.size());
  Descriptor w;
  w.op = Opcode::kRdmaWrite;
  w.segs = {DataSegment{src.data(), hs, 64}};
  w.remote = {reinterpret_cast<std::uint64_t>(dst.data()), hd};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(w), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kRdmaProtectionError);
}

TEST_F(ViaPairTest, RdmaReadPullsRemoteData) {
  Connect();
  std::vector<std::byte> remote(8192), local(8192);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<std::byte>((i * 13) & 0xff);
  }
  MemAttrs attrs;
  attrs.enable_rdma_read = true;
  const MemHandle hr =
      Register(nic_b_, actor_b_, remote.data(), remote.size(), attrs);
  const MemHandle hl = Register(nic_a_, actor_a_, local.data(), local.size());

  Descriptor r;
  r.op = Opcode::kRdmaRead;
  r.segs = {DataSegment{local.data(), hl, 8192}};
  r.remote = {reinterpret_cast<std::uint64_t>(remote.data()), hr};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(r), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kSuccess);
  EXPECT_EQ(std::memcmp(remote.data(), local.data(), 8192), 0);
  // RDMA read costs a round trip: strictly more than one propagation + wire.
  EXPECT_GT(done->done_at,
            fabric_.cost().propagation + fabric_.cost().wire_time(8192));
}

TEST_F(ViaPairTest, RdmaRequiresMatchingProtectionTag) {
  // Endpoints carry ptag 7; a region registered under a different tag must
  // be refused as an RDMA target even with the right access flags.
  ViAttrs attrs;
  attrs.ptag = 7;
  Connect(attrs);
  std::vector<std::byte> src(64), good(64), bad(64);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  MemAttrs rw;
  rw.enable_rdma_write = true;
  MemHandle hg, hb;
  {
    ActorScope scope(actor_b_);
    hg = nic_b_.register_memory(good.data(), good.size(), 7, rw);
    hb = nic_b_.register_memory(bad.data(), bad.size(), 99, rw);
  }
  ActorScope scope(actor_a_);
  Descriptor w;
  w.op = Opcode::kRdmaWrite;
  w.segs = {DataSegment{src.data(), hs, 64}};
  w.remote = {reinterpret_cast<std::uint64_t>(bad.data()), hb};
  ASSERT_EQ(vi_a_->post_send(w), Status::kSuccess);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kRdmaProtectionError);

  Descriptor w2;
  w2.op = Opcode::kRdmaWrite;
  w2.segs = {DataSegment{src.data(), hs, 64}};
  w2.remote = {reinterpret_cast<std::uint64_t>(good.data()), hg};
  ASSERT_EQ(vi_a_->post_send(w2), Status::kSuccess);
  ASSERT_EQ(vi_a_->send_wait(done, kWait), Status::kSuccess);
  EXPECT_EQ(done->status, DescStatus::kSuccess);
}

TEST_F(ViaPairTest, ReliableReceptionCompletesSendAtArrival) {
  ViAttrs rr;
  rr.reliability = ReliabilityLevel::kReliableReception;
  Connect(rr);
  std::vector<std::byte> src(32 * 1024), dst(32 * 1024);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  const MemHandle hd = Register(nic_b_, actor_b_, dst.data(), dst.size());
  Descriptor recv;
  recv.segs = {DataSegment{dst.data(), hd, 32 * 1024}};
  ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);
  Descriptor send;
  send.segs = {DataSegment{src.data(), hs, 32 * 1024}};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  Descriptor* sd = nullptr;
  ASSERT_EQ(vi_a_->send_wait(sd, kWait), Status::kSuccess);
  ActorScope scope_b(actor_b_);
  Descriptor* rd = nullptr;
  ASSERT_EQ(vi_b_->recv_wait(rd, kWait), Status::kSuccess);
  // Reliable reception: sender completion coincides with delivery.
  EXPECT_EQ(sd->done_at, rd->done_at);
}

TEST_F(ViaPairTest, RdmaReadForbiddenOnUnreliableVi) {
  ViAttrs attrs;
  attrs.reliability = ReliabilityLevel::kUnreliable;
  Connect(attrs);
  Descriptor r;
  r.op = Opcode::kRdmaRead;
  ActorScope scope(actor_a_);
  EXPECT_EQ(vi_a_->post_send(r), Status::kInvalidRdmaOp);
}

// ---------------------------------------------------------------------------
// Completion queues
// ---------------------------------------------------------------------------

TEST_F(ViaPairTest, CompletionQueueMultiplexesManyVis) {
  CompletionQueue cq;
  // Two VI pairs, both receive-completing into one CQ on the server side.
  Vi a1(nic_a_, {}), a2(nic_a_, {});
  Vi b1(nic_b_, {}, nullptr, &cq), b2(nic_b_, {}, nullptr, &cq);
  Listener lis(nic_b_, "svc");
  std::thread server([&] {
    ActorScope scope(actor_b_);
    ASSERT_EQ(lis.accept(b1, kWait), Status::kSuccess);
    ASSERT_EQ(lis.accept(b2, kWait), Status::kSuccess);
  });
  {
    ActorScope scope(actor_a_);
    ASSERT_EQ(nic_a_.connect(a1, "svc", kWait), Status::kSuccess);
    ASSERT_EQ(nic_a_.connect(a2, "svc", kWait), Status::kSuccess);
  }
  server.join();

  std::vector<std::byte> dst1(64), dst2(64), src(64);
  const MemHandle hd1 = Register(nic_b_, actor_b_, dst1.data(), dst1.size());
  const MemHandle hd2 = Register(nic_b_, actor_b_, dst2.data(), dst2.size());
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  Descriptor r1, r2;
  r1.segs = {DataSegment{dst1.data(), hd1, 64}};
  r2.segs = {DataSegment{dst2.data(), hd2, 64}};
  ASSERT_EQ(b1.post_recv(r1), Status::kSuccess);
  ASSERT_EQ(b2.post_recv(r2), Status::kSuccess);

  Descriptor s1, s2;
  s1.segs = {DataSegment{src.data(), hs, 64}};
  s2.segs = {DataSegment{src.data(), hs, 64}};
  {
    ActorScope scope(actor_a_);
    ASSERT_EQ(a2.post_send(s2), Status::kSuccess);
    ASSERT_EQ(a1.post_send(s1), Status::kSuccess);
  }
  ActorScope scope(actor_b_);
  via::Completion c1, c2;
  ASSERT_EQ(cq.wait(c1, kWait), Status::kSuccess);
  ASSERT_EQ(cq.wait(c2, kWait), Status::kSuccess);
  EXPECT_TRUE(c1.is_recv);
  EXPECT_TRUE(c2.is_recv);
  // Both VIs delivered through the same CQ.
  EXPECT_TRUE((c1.vi == &b1 && c2.vi == &b2) ||
              (c1.vi == &b2 && c2.vi == &b1));
  EXPECT_EQ(cq.pending(), 0u);
  via::Completion none;
  EXPECT_EQ(cq.poll(none), Status::kNotDone);
}

TEST_F(ViaPairTest, ReapSynchronizesVirtualClock) {
  Connect();
  std::vector<std::byte> src(32 * 1024), dst(32 * 1024);
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), src.size());
  const MemHandle hd = Register(nic_b_, actor_b_, dst.data(), dst.size());
  Descriptor recv;
  recv.segs = {DataSegment{dst.data(), hd, 32 * 1024}};
  ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);
  Descriptor send;
  send.segs = {DataSegment{src.data(), hs, 32 * 1024}};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  ActorScope scope_b(actor_b_);
  Descriptor* done = nullptr;
  const sim::Time before = actor_b_.now();
  ASSERT_EQ(vi_b_->recv_wait(done, kWait), Status::kSuccess);
  EXPECT_GE(actor_b_.now(), done->done_at);
  EXPECT_GE(actor_b_.now(), before);
  // The receiver's clock must now include the wire time of the payload.
  EXPECT_GE(done->done_at, fabric_.cost().wire_time(32 * 1024));
}

// ---------------------------------------------------------------------------
// Parameterized integrity sweep
// ---------------------------------------------------------------------------

class ViaSizeSweep : public ViaPairTest,
                     public ::testing::WithParamInterface<std::size_t> {};

TEST_P(ViaSizeSweep, SendIntegrityAcrossSizes) {
  Connect();
  const std::size_t n = GetParam();
  std::vector<std::byte> src(n), dst(n, std::byte{0});
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = static_cast<std::byte>((i ^ (i >> 8)) & 0xff);
  }
  const MemHandle hs = Register(nic_a_, actor_a_, src.data(), n);
  const MemHandle hd = Register(nic_b_, actor_b_, dst.data(), n);
  Descriptor recv;
  recv.segs = {DataSegment{dst.data(), hd, static_cast<std::uint32_t>(n)}};
  ASSERT_EQ(vi_b_->post_recv(recv), Status::kSuccess);
  Descriptor send;
  send.segs = {DataSegment{src.data(), hs, static_cast<std::uint32_t>(n)}};
  ActorScope scope(actor_a_);
  ASSERT_EQ(vi_a_->post_send(send), Status::kSuccess);
  ActorScope scope_b(actor_b_);
  Descriptor* done = nullptr;
  ASSERT_EQ(vi_b_->recv_wait(done, kWait), Status::kSuccess);
  ASSERT_EQ(done->length, n);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), n), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ViaSizeSweep,
                         ::testing::Values(1, 63, 64, 65, 1024, 4096,
                                           32 * 1024, 32 * 1024 + 1,
                                           256 * 1024));

}  // namespace
