#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/lock_table.hpp"
#include "dafs/server.hpp"
#include "sim/rng.hpp"

namespace {

using dafs::ClientConfig;
using dafs::Fh;
using dafs::IoVec;
using dafs::kOpenCreate;
using dafs::kOpenExcl;
using dafs::kOpenTrunc;
using dafs::LockTable;
using dafs::PStatus;
using dafs::Server;
using dafs::ServerConfig;
using dafs::Session;
using sim::Actor;
using sim::ActorScope;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

/// Fabric + server + one client node; sessions created per test.
class DafsTest : public ::testing::Test {
 protected:
  DafsTest()
      : server_node_(fabric_.add_node("filer")),
        client_node_(fabric_.add_node("client")),
        server_(fabric_, server_node_, ServerConfig{}),
        client_nic_(fabric_, client_node_, "client-nic"),
        client_actor_("client", &fabric_.node(client_node_)) {
    server_.start();
  }

  std::unique_ptr<Session> Connect(ClientConfig cfg = {}) {
    ActorScope scope(client_actor_);
    auto r = Session::connect(client_nic_,
                              dafs::MountSpec{{}, std::move(cfg)});
    EXPECT_TRUE(r.ok());
    return r.ok() ? std::move(r.value()) : nullptr;
  }

  sim::Fabric fabric_;
  sim::NodeId server_node_, client_node_;
  Server server_;
  via::Nic client_nic_;
  Actor client_actor_;
};

// ---------------------------------------------------------------------------
// LockTable unit tests
// ---------------------------------------------------------------------------

TEST(LockTable, SharedLocksCoexistExclusiveConflicts) {
  LockTable t;
  EXPECT_TRUE(t.try_acquire(1, 0, 100, /*owner=*/1, /*exclusive=*/false));
  EXPECT_TRUE(t.try_acquire(1, 50, 100, 2, false));
  EXPECT_FALSE(t.try_acquire(1, 60, 10, 3, true));
  EXPECT_TRUE(t.try_acquire(1, 200, 10, 3, true));
  EXPECT_FALSE(t.try_acquire(1, 205, 10, 4, false));
}

TEST(LockTable, NonOverlappingRangesAreIndependent) {
  LockTable t;
  EXPECT_TRUE(t.try_acquire(1, 0, 100, 1, true));
  EXPECT_TRUE(t.try_acquire(1, 100, 100, 2, true));
  EXPECT_TRUE(t.try_acquire(2, 0, 100, 3, true));  // different file
}

TEST(LockTable, ZeroLengthMeansToEof) {
  LockTable t;
  EXPECT_TRUE(t.try_acquire(1, 1000, 0, 1, true));
  EXPECT_FALSE(t.try_acquire(1, 5000, 10, 2, true));
  EXPECT_TRUE(t.try_acquire(1, 0, 1000, 2, true));  // below the EOF lock
}

TEST(LockTable, ReleaseTrimsPosixStyle) {
  LockTable t;
  EXPECT_TRUE(t.try_acquire(1, 0, 100, 1, true));
  EXPECT_FALSE(t.release(1, 0, 100, 2));  // wrong owner: nothing released
  EXPECT_TRUE(t.release(1, 0, 50, 1));    // partial release trims the range
  EXPECT_TRUE(t.try_acquire(1, 0, 50, 2, true));    // freed prefix reusable
  EXPECT_FALSE(t.try_acquire(1, 50, 50, 2, true));  // tail still held
  EXPECT_TRUE(t.release(1, 50, 50, 1));
  EXPECT_TRUE(t.try_acquire(1, 50, 50, 2, true));
}

TEST(LockTable, ReleaseOwnerDropsEverything) {
  LockTable t;
  EXPECT_TRUE(t.try_acquire(1, 0, 10, 1, true));
  EXPECT_TRUE(t.try_acquire(2, 0, 10, 1, true));
  EXPECT_TRUE(t.try_acquire(3, 0, 10, 2, true));
  t.release_owner(1);
  EXPECT_EQ(t.held(1), 0u);
  EXPECT_EQ(t.held(2), 0u);
  EXPECT_EQ(t.held(3), 1u);
}

TEST(LockTable, OwnerMayStackOwnRanges) {
  LockTable t;
  EXPECT_TRUE(t.try_acquire(1, 0, 100, 1, true));
  EXPECT_TRUE(t.try_acquire(1, 50, 100, 1, true));
}

// ---------------------------------------------------------------------------
// Session / namespace
// ---------------------------------------------------------------------------

TEST_F(DafsTest, ConnectAssignsSession) {
  auto s = Connect();
  ASSERT_NE(s, nullptr);
  EXPECT_NE(s->session_id(), 0u);
  ActorScope scope(client_actor_);
  s.reset();
}

TEST_F(DafsTest, OpenCreateLookup) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/data.bin", kOpenCreate);
  ASSERT_TRUE(fh.ok());
  EXPECT_TRUE(fh.value().valid());
  // Plain open finds it again.
  auto fh2 = s->open("/data.bin");
  ASSERT_TRUE(fh2.ok());
  EXPECT_EQ(fh2.value().ino, fh.value().ino);
  // Exclusive create now fails.
  auto fh3 = s->open("/data.bin", kOpenCreate | kOpenExcl);
  ASSERT_FALSE(fh3.ok());
  EXPECT_EQ(fh3.error(), PStatus::kExists);
  // Missing file fails.
  auto fh4 = s->open("/nope");
  ASSERT_FALSE(fh4.ok());
  EXPECT_EQ(fh4.error(), PStatus::kNoEnt);
  s.reset();
}

TEST_F(DafsTest, MkdirNestedCreateAndReaddir) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  ASSERT_EQ(s->mkdir("/exp"), PStatus::kOk);
  ASSERT_EQ(s->mkdir("/exp/run1"), PStatus::kOk);
  ASSERT_TRUE(s->open("/exp/run1/out.dat", kOpenCreate).ok());
  ASSERT_TRUE(s->open("/exp/run1/log.txt", kOpenCreate).ok());
  auto ls = s->readdir("/exp/run1");
  ASSERT_TRUE(ls.ok());
  ASSERT_EQ(ls.value().size(), 2u);
  EXPECT_EQ(ls.value()[0].name, "log.txt");
  EXPECT_EQ(ls.value()[1].name, "out.dat");
  s.reset();
}

TEST_F(DafsTest, ReaddirPaginatesLargeDirectories) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  ASSERT_EQ(s->mkdir("/big"), PStatus::kOk);
  constexpr int kFiles = 700;  // overflows one 16 KiB response
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(
        s->open("/big/file_" + std::to_string(10000 + i), kOpenCreate).ok());
  }
  auto ls = s->readdir("/big");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ls.value().size(), static_cast<std::size_t>(kFiles));
  s.reset();
}

TEST_F(DafsTest, RemoveRenameGetattr) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/a", kOpenCreate);
  ASSERT_TRUE(fh.ok());
  auto data = pattern(100, 1);
  ASSERT_TRUE(s->pwrite(fh.value(), 0, data).ok());
  auto attrs = s->getattr(fh.value());
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs.value().size, 100u);
  EXPECT_FALSE(attrs.value().is_dir);
  ASSERT_EQ(s->rename("/a", "/b"), PStatus::kOk);
  EXPECT_EQ(s->open("/a").error(), PStatus::kNoEnt);
  ASSERT_TRUE(s->open("/b").ok());
  ASSERT_EQ(s->remove("/b"), PStatus::kOk);
  EXPECT_EQ(s->open("/b").error(), PStatus::kNoEnt);
  s.reset();
}

TEST_F(DafsTest, TruncOnOpenResetsFile) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/t", kOpenCreate);
  auto data = pattern(1000, 2);
  ASSERT_TRUE(s->pwrite(fh.value(), 0, data).ok());
  auto fh2 = s->open("/t", kOpenTrunc);
  ASSERT_TRUE(fh2.ok());
  EXPECT_EQ(s->getattr(fh2.value()).value().size, 0u);
  s.reset();
}

TEST_F(DafsTest, SetSizeRoundTrips) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/sz", kOpenCreate);
  ASSERT_EQ(s->set_size(fh.value(), 1 << 20), PStatus::kOk);
  EXPECT_EQ(s->getattr(fh.value()).value().size, 1u << 20);
  s.reset();
}

// ---------------------------------------------------------------------------
// Inline vs direct data path
// ---------------------------------------------------------------------------

class DafsIoSweep : public DafsTest,
                    public ::testing::WithParamInterface<std::size_t> {};

TEST_P(DafsIoSweep, WriteReadRoundTrip) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  const std::size_t n = GetParam();
  auto fh = s->open("/io.bin", kOpenCreate);
  ASSERT_TRUE(fh.ok());
  auto data = pattern(n, n);
  auto w = s->pwrite(fh.value(), 0, data);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), n);
  std::vector<std::byte> back(n, std::byte{0});
  auto r = s->pread(fh.value(), 0, back);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), n);
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
  s.reset();
}

// Spans inline (<4K), the threshold boundary, multi-message inline would-be
// sizes, and multi-chunk/multi-packet direct transfers.
INSTANTIATE_TEST_SUITE_P(Sizes, DafsIoSweep,
                         ::testing::Values(1, 100, 4095, 4096, 4097, 16 * 1024,
                                           64 * 1024, 100 * 1000,
                                           1 << 20));

TEST_F(DafsTest, InlinePathUsedBelowThreshold) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/x", kOpenCreate);
  auto data = pattern(1024, 3);
  ASSERT_TRUE(s->pwrite(fh.value(), 0, data).ok());
  std::vector<std::byte> back(1024);
  ASSERT_TRUE(s->pread(fh.value(), 0, back).ok());
  EXPECT_GT(fabric_.stats().get("dafs.inline_read_bytes"), 0u);
  EXPECT_GT(fabric_.stats().get("dafs.inline_write_bytes"), 0u);
  EXPECT_EQ(fabric_.stats().get("dafs.direct_read_bytes"), 0u);
  EXPECT_EQ(fabric_.stats().get("dafs.direct_write_bytes"), 0u);
  s.reset();
}

TEST_F(DafsTest, DirectPathUsedAboveThresholdWithZeroClientCopies) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/big", kOpenCreate);
  auto data = pattern(256 * 1024, 4);
  const std::uint64_t copies_before =
      fabric_.stats().get("dafs.client_copy_bytes");
  ASSERT_TRUE(s->pwrite(fh.value(), 0, data).ok());
  std::vector<std::byte> back(256 * 1024);
  ASSERT_TRUE(s->pread(fh.value(), 0, back).ok());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), back.size()), 0);
  // Zero-copy: the client never touched payload bytes.
  EXPECT_EQ(fabric_.stats().get("dafs.client_copy_bytes"), copies_before);
  EXPECT_EQ(fabric_.stats().get("dafs.direct_read_bytes"), 256u * 1024);
  EXPECT_EQ(fabric_.stats().get("dafs.direct_write_bytes"), 256u * 1024);
  EXPECT_GT(fabric_.stats().get("via.rdma_writes"), 0u);
  EXPECT_GT(fabric_.stats().get("via.rdma_reads"), 0u);
  s.reset();
}

TEST_F(DafsTest, ReadPastEofReturnsShort) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/short", kOpenCreate);
  auto data = pattern(1000, 5);
  ASSERT_TRUE(s->pwrite(fh.value(), 0, data).ok());
  std::vector<std::byte> back(100'000);
  auto r = s->pread(fh.value(), 0, back);  // direct path (>= threshold)
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1000u);
  std::vector<std::byte> small(64);
  auto r2 = s->pread(fh.value(), 990, small);  // inline path
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), 10u);
  auto r3 = s->pread(fh.value(), 5000, small);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value(), 0u);
  s.reset();
}

TEST_F(DafsTest, SparseWriteAtOffsetPreservesHole) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/sparse", kOpenCreate);
  auto data = pattern(64 * 1024, 6);
  ASSERT_TRUE(s->pwrite(fh.value(), 1 << 20, data).ok());
  EXPECT_EQ(s->getattr(fh.value()).value().size, (1u << 20) + 64 * 1024);
  std::vector<std::byte> hole(4096, std::byte{0xee});
  ASSERT_TRUE(s->pread(fh.value(), 1000, hole).ok());
  for (auto b : hole) ASSERT_EQ(b, std::byte{0});
  s.reset();
}

TEST_F(DafsTest, BatchListIoRoundTrip) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/batch", kOpenCreate);
  // Strided write: 8 pieces of 8 KiB every 32 KiB.
  auto data = pattern(8 * 8192, 7);
  std::vector<IoVec> iovs;
  for (int i = 0; i < 8; ++i) {
    iovs.push_back(IoVec{static_cast<std::uint64_t>(i) * 32 * 1024,
                         data.data() + i * 8192, 8192});
  }
  auto w = s->write_batch(fh.value(), iovs);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), data.size());
  // One request on the wire, not eight.
  EXPECT_EQ(fabric_.stats().get("dafs.direct_write_reqs"), 1u);

  std::vector<std::byte> back(data.size(), std::byte{0});
  std::vector<IoVec> riovs;
  for (int i = 0; i < 8; ++i) {
    riovs.push_back(IoVec{static_cast<std::uint64_t>(i) * 32 * 1024,
                          back.data() + i * 8192, 8192});
  }
  auto r = s->read_batch(fh.value(), riovs);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), data.size());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
  s.reset();
}

// ---------------------------------------------------------------------------
// Async I/O
// ---------------------------------------------------------------------------

TEST_F(DafsTest, AsyncWritesOverlapAndComplete) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/async", kOpenCreate);
  constexpr int kOps = 4;
  std::vector<std::vector<std::byte>> bufs;
  std::vector<dafs::OpId> ops;
  for (int i = 0; i < kOps; ++i) {
    bufs.push_back(pattern(64 * 1024, 100 + i));
    auto op = s->submit_pwrite(fh.value(), static_cast<std::uint64_t>(i) * 64 * 1024,
                               bufs.back());
    ASSERT_TRUE(op.ok());
    ops.push_back(op.value());
  }
  ASSERT_EQ(s->wait_all(ops), PStatus::kOk);
  EXPECT_EQ(s->getattr(fh.value()).value().size, kOps * 64u * 1024);
  // Read everything back through one async read per region.
  std::vector<std::vector<std::byte>> back(kOps,
                                           std::vector<std::byte>(64 * 1024));
  std::vector<dafs::OpId> rops;
  for (int i = 0; i < kOps; ++i) {
    auto op = s->submit_pread(fh.value(), static_cast<std::uint64_t>(i) * 64 * 1024,
                              back[i]);
    ASSERT_TRUE(op.ok());
    rops.push_back(op.value());
  }
  ASSERT_EQ(s->wait_all(rops), PStatus::kOk);
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(std::memcmp(bufs[i].data(), back[i].data(), 64 * 1024), 0);
  }
  s.reset();
}

TEST_F(DafsTest, AsyncTestPollsToCompletion) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/poll", kOpenCreate);
  auto data = pattern(32 * 1024, 9);
  auto op = s->submit_pwrite(fh.value(), 0, data);
  ASSERT_TRUE(op.ok());
  std::uint64_t bytes = 0;
  for (;;) {
    auto done = s->test(op.value(), &bytes);
    ASSERT_TRUE(done.ok());
    if (done.value()) break;
    std::this_thread::yield();
  }
  EXPECT_EQ(bytes, data.size());
  s.reset();
}

TEST_F(DafsTest, CreditLimitRefusesExcessOutstandingOps) {
  ClientConfig cfg;
  cfg.credits = 2;
  auto s = Connect(cfg);
  ActorScope scope(client_actor_);
  auto fh = s->open("/credits", kOpenCreate);
  auto data = pattern(64 * 1024, 10);
  auto op1 = s->submit_pwrite(fh.value(), 0, data);
  ASSERT_TRUE(op1.ok());
  auto op2 = s->submit_pwrite(fh.value(), 1 << 20, data);
  ASSERT_TRUE(op2.ok());
  auto op3 = s->submit_pwrite(fh.value(), 2 << 20, data);
  ASSERT_FALSE(op3.ok());
  EXPECT_EQ(op3.error(), PStatus::kInval);
  ASSERT_EQ(s->wait(op1.value()), PStatus::kOk);
  ASSERT_EQ(s->wait(op2.value()), PStatus::kOk);
  s.reset();
}

// ---------------------------------------------------------------------------
// Locks / counters
// ---------------------------------------------------------------------------

TEST_F(DafsTest, LocksConflictAcrossSessions) {
  auto s1 = Connect();
  auto s2 = Connect();
  ActorScope scope(client_actor_);
  auto fh = s1->open("/locked", kOpenCreate);
  ASSERT_TRUE(fh.ok());
  auto fh2 = s2->open("/locked");
  ASSERT_TRUE(fh2.ok());
  ASSERT_EQ(s1->try_lock(fh.value(), 0, 100, true), PStatus::kOk);
  EXPECT_EQ(s2->try_lock(fh2.value(), 50, 100, true), PStatus::kLockConflict);
  ASSERT_EQ(s1->unlock(fh.value(), 0, 100), PStatus::kOk);
  EXPECT_EQ(s2->try_lock(fh2.value(), 50, 100, true), PStatus::kOk);
  ASSERT_EQ(s2->unlock(fh2.value(), 50, 100), PStatus::kOk);
  s1.reset();
  s2.reset();
}

TEST_F(DafsTest, DisconnectReleasesLocks) {
  auto s1 = Connect();
  auto s2 = Connect();
  ActorScope scope(client_actor_);
  auto fh = s1->open("/locked2", kOpenCreate);
  ASSERT_EQ(s1->try_lock(fh.value(), 0, 0, true), PStatus::kOk);
  auto fh2 = s2->open("/locked2");
  EXPECT_EQ(s2->try_lock(fh2.value(), 0, 0, true), PStatus::kLockConflict);
  s1.reset();  // disconnect releases the lock server-side
  EXPECT_EQ(s2->lock(fh2.value(), 0, 0, true), PStatus::kOk);
  s2.reset();
}

TEST_F(DafsTest, NamedCountersFetchAdd) {
  auto s1 = Connect();
  auto s2 = Connect();
  ActorScope scope(client_actor_);
  EXPECT_EQ(s1->fetch_add("shared_ptr:/f", 10).value(), 0u);
  EXPECT_EQ(s2->fetch_add("shared_ptr:/f", 5).value(), 10u);
  EXPECT_EQ(s1->fetch_add("shared_ptr:/f", 0).value(), 15u);
  ASSERT_EQ(s1->set_counter("shared_ptr:/f", 0), PStatus::kOk);
  EXPECT_EQ(s2->fetch_add("shared_ptr:/f", 1).value(), 0u);
  s1.reset();
  s2.reset();
}

// ---------------------------------------------------------------------------
// Registration cache
// ---------------------------------------------------------------------------

TEST_F(DafsTest, RegistrationCacheHitsOnRepeatedBuffers) {
  auto s = Connect();
  ActorScope scope(client_actor_);
  auto fh = s->open("/reg", kOpenCreate);
  auto data = pattern(128 * 1024, 11);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s->pwrite(fh.value(), 0, data).ok());
  }
  EXPECT_EQ(s->reg_cache_misses(), 1u);
  EXPECT_EQ(s->reg_cache_hits(), 4u);
  s.reset();
}

TEST_F(DafsTest, RegistrationCacheDisabledRegistersEachTime) {
  ClientConfig cfg;
  cfg.reg_cache = false;
  auto s = Connect(cfg);
  ActorScope scope(client_actor_);
  auto fh = s->open("/noreg", kOpenCreate);
  auto data = pattern(128 * 1024, 12);
  // Warm the server's slab cache so its one-time slab registration does not
  // land inside the measured window.
  ASSERT_TRUE(s->pwrite(fh.value(), 0, data).ok());
  const auto regs_before = fabric_.stats().get("via.registrations");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s->pwrite(fh.value(), 0, data).ok());
  }
  EXPECT_EQ(fabric_.stats().get("via.registrations") - regs_before, 3u);
  EXPECT_EQ(s->reg_cache_hits(), 0u);
  s.reset();
}

// ---------------------------------------------------------------------------
// Virtual-time sanity: direct beats inline for large transfers
// ---------------------------------------------------------------------------

TEST_F(DafsTest, DirectReadIsFasterThanInlineForLargeTransfers) {
  // Force-inline client vs default client on identical workloads.
  ClientConfig inline_cfg;
  inline_cfg.direct_threshold = SIZE_MAX;  // never use direct
  auto prep = Connect();
  ActorScope scope(client_actor_);
  auto fh = prep->open("/perf", kOpenCreate);
  auto data = pattern(1 << 20, 13);
  ASSERT_TRUE(prep->pwrite(fh.value(), 0, data).ok());
  prep.reset();

  std::vector<std::byte> back(1 << 20);

  auto s_inline = Connect(inline_cfg);
  const sim::Time t0 = client_actor_.now();
  ASSERT_TRUE(
      s_inline->pread(s_inline->open("/perf").value(), 0, back).ok());
  const sim::Time inline_cost = client_actor_.now() - t0;
  s_inline.reset();

  auto s_direct = Connect();
  const sim::Time t1 = client_actor_.now();
  ASSERT_TRUE(
      s_direct->pread(s_direct->open("/perf").value(), 0, back).ok());
  const sim::Time direct_cost = client_actor_.now() - t1;
  s_direct.reset();

  EXPECT_LT(direct_cost, inline_cost);
}

}  // namespace
