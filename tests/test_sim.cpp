#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "sim/actor.hpp"
#include "sim/cost_model.hpp"
#include "sim/fabric.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace {

using sim::Actor;
using sim::ActorScope;
using sim::CostKind;
using sim::CostModel;
using sim::Fabric;
using sim::Resource;
using sim::Time;

// ---------------------------------------------------------------------------
// Time helpers
// ---------------------------------------------------------------------------

TEST(SimTime, UsecRoundTrips) {
  EXPECT_EQ(sim::usec(1.0), 1'000u);
  EXPECT_EQ(sim::usec(2.5), 2'500u);
  EXPECT_DOUBLE_EQ(sim::to_usec(1'500), 1.5);
  EXPECT_DOUBLE_EQ(sim::to_msec(2'000'000), 2.0);
}

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

TEST(CostModel, WireTimeMatchesRate) {
  CostModel cm;
  cm.link_mbps = 125.0;
  // 125 MB/s == 125 bytes/us -> 125000 bytes take 1000 us.
  EXPECT_EQ(cm.wire_time(125'000), 1'000'000u);
  EXPECT_EQ(cm.wire_time(0), 0u);
}

TEST(CostModel, CopyTimeMatchesRate) {
  CostModel cm;
  cm.memcpy_mbps = 400.0;
  EXPECT_EQ(cm.copy_time(400'000), 1'000'000u);
}

TEST(CostModel, RegistrationScalesWithPages) {
  CostModel cm;
  const Time one_page = cm.reg_time(1);
  const Time ten_pages = cm.reg_time(10 * cm.page_size);
  EXPECT_EQ(one_page, cm.reg_base + cm.reg_per_page);
  EXPECT_EQ(ten_pages, cm.reg_base + 10 * cm.reg_per_page);
}

TEST(CostModel, PacketCountCeils) {
  CostModel cm;
  cm.mtu = 1024;
  EXPECT_EQ(cm.packets(0), 1u);
  EXPECT_EQ(cm.packets(1), 1u);
  EXPECT_EQ(cm.packets(1024), 1u);
  EXPECT_EQ(cm.packets(1025), 2u);
}

TEST(CostModel, TcpSegmentsCeil) {
  CostModel cm;
  EXPECT_EQ(cm.tcp_segments(1460), 1u);
  EXPECT_EQ(cm.tcp_segments(1461), 2u);
}

// ---------------------------------------------------------------------------
// Resource
// ---------------------------------------------------------------------------

TEST(Resource, BackToBackOccupationsSerialize) {
  Resource r;
  EXPECT_EQ(r.occupy(0, 100), 100u);
  EXPECT_EQ(r.occupy(0, 50), 150u);   // pushed behind the first
  EXPECT_EQ(r.occupy(500, 10), 510u); // idle gap honoured
  EXPECT_EQ(r.total_busy(), 160u);
}

TEST(Resource, OccupyNeverStartsBeforeReady) {
  Resource r;
  const Time done = r.occupy(1'000, 1);
  EXPECT_EQ(done, 1'001u);
}

// Regression: a fast-forwarded actor's reservation must not impose phantom
// queueing on causally-unrelated work. The second occupation is ready during
// an idle window that precedes the first reservation, so it backfills the
// gap instead of landing at t=1'000'100.
TEST(Resource, EarlyReadyOccupationBackfillsIdleGap) {
  Resource r;
  EXPECT_EQ(r.occupy(1'000'000, 100), 1'000'100u);
  EXPECT_EQ(r.occupy(0, 50), 50u);
  // A request that does not fit the remaining gap still serializes after
  // the future reservation — contention is real, only phantom waits go.
  EXPECT_EQ(r.occupy(0, 2'000'000), 3'000'100u);
  EXPECT_EQ(r.total_busy(), 2'000'150u);
}

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

TEST(Actor, ChargeAdvancesClockAndAccounts) {
  Fabric f;
  auto n = f.add_node("n0");
  Actor a("a", &f.node(n));
  ActorScope scope(a);
  a.charge(CostKind::kCopy, 500);
  a.charge(CostKind::kProtocol, 300);
  EXPECT_EQ(a.now(), 800u);
  EXPECT_EQ(a.busy()[CostKind::kCopy], 500u);
  EXPECT_EQ(a.busy()[CostKind::kProtocol], 300u);
  EXPECT_EQ(a.busy().total(), 800u);
}

TEST(Actor, SyncToOnlyMovesForward) {
  Fabric f;
  auto n = f.add_node("n0");
  Actor a("a", &f.node(n));
  a.sync_to(1'000);
  EXPECT_EQ(a.now(), 1'000u);
  a.sync_to(500);
  EXPECT_EQ(a.now(), 1'000u);
}

TEST(Actor, CoLocatedActorsContendForCpu) {
  Fabric f;
  auto n = f.add_node("n0");
  Actor a("a", &f.node(n));
  Actor b("b", &f.node(n));
  a.charge(CostKind::kCopy, 1'000);
  b.charge(CostKind::kCopy, 1'000);
  // b's charge was pushed behind a's on the shared CPU.
  EXPECT_EQ(b.now(), 2'000u);
}

TEST(Actor, CurrentFollowsScopeNesting) {
  Fabric f;
  auto n = f.add_node("n0");
  Actor a("a", &f.node(n));
  Actor b("b", &f.node(n));
  EXPECT_EQ(Actor::current(), nullptr);
  {
    ActorScope sa(a);
    EXPECT_EQ(Actor::current(), &a);
    {
      ActorScope sb(b);
      EXPECT_EQ(Actor::current(), &b);
    }
    EXPECT_EQ(Actor::current(), &a);
  }
  EXPECT_EQ(Actor::current(), nullptr);
}

// ---------------------------------------------------------------------------
// Fabric transfer timing
// ---------------------------------------------------------------------------

TEST(Fabric, SingleSmallMessageLatency) {
  CostModel cm;
  Fabric f(cm);
  auto a = f.add_node("a");
  auto b = f.add_node("b");
  const std::uint64_t bytes = 64;
  const Time arrival = f.transfer(a, b, bytes, 0);
  EXPECT_EQ(arrival, cm.propagation + cm.wire_time(bytes) + cm.per_packet);
}

TEST(Fabric, LargeMessagePipelinesAcrossPackets) {
  CostModel cm;
  Fabric f(cm);
  auto a = f.add_node("a");
  auto b = f.add_node("b");
  const std::uint64_t bytes = 4ull * cm.mtu;
  const Time arrival = f.transfer(a, b, bytes, 0);
  // Pipelined: total ~= serialization of all packets + one propagation.
  const Time ser = cm.wire_time(bytes) + 4 * cm.per_packet;
  EXPECT_EQ(arrival, ser + cm.propagation);
}

TEST(Fabric, LoopbackIsFree) {
  Fabric f;
  auto a = f.add_node("a");
  EXPECT_EQ(f.transfer(a, a, 1 << 20, 42), 42u);
}

TEST(Fabric, TwoSendersSaturateReceiverIngress) {
  CostModel cm;
  Fabric f(cm);
  auto a = f.add_node("a");
  auto b = f.add_node("b");
  auto dst = f.add_node("dst");
  const std::uint64_t bytes = cm.mtu;
  const Time t1 = f.transfer(a, dst, bytes, 0);
  const Time t2 = f.transfer(b, dst, bytes, 0);
  // Second flow serializes behind the first on dst's ingress.
  EXPECT_GE(t2, t1 + cm.wire_time(bytes));
}

TEST(Fabric, BandwidthApproachesLinkRateForLargeTransfers) {
  CostModel cm;
  Fabric f(cm);
  auto a = f.add_node("a");
  auto b = f.add_node("b");
  const std::uint64_t bytes = 8 << 20;
  const Time arrival = f.transfer(a, b, bytes, 0);
  const double mbps = static_cast<double>(bytes) * 1'000.0 /
                      static_cast<double>(arrival);
  EXPECT_GT(mbps, cm.link_mbps * 0.9);
  EXPECT_LE(mbps, cm.link_mbps * 1.01);
}

TEST(Fabric, NameServiceBindLookupUnbind) {
  Fabric f;
  int x = 0;
  f.bind("svc", &x);
  EXPECT_EQ(f.lookup("svc"), &x);
  f.unbind("svc");
  EXPECT_EQ(f.lookup("svc"), nullptr);
  EXPECT_EQ(f.lookup("nope"), nullptr);
}

TEST(Fabric, StatsCountPacketsAndBytes) {
  CostModel cm;
  Fabric f(cm);
  auto a = f.add_node("a");
  auto b = f.add_node("b");
  f.transfer(a, b, 3 * cm.mtu, 0);
  EXPECT_EQ(f.stats().get("fabric.packets"), 3u);
  EXPECT_EQ(f.stats().get("fabric.bytes"), 3ull * cm.mtu);
}

// ---------------------------------------------------------------------------
// Property-style sweeps
// ---------------------------------------------------------------------------

class TransferMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransferMonotonicity, ArrivalGrowsWithSize) {
  CostModel cm;
  Fabric f(cm);
  auto a = f.add_node("a");
  auto b = f.add_node("b");
  const std::uint64_t bytes = GetParam();
  Fabric f2(cm);
  auto a2 = f2.add_node("a");
  auto b2 = f2.add_node("b");
  const Time small = f.transfer(a, b, bytes, 0);
  const Time bigger = f2.transfer(a2, b2, bytes * 2, 0);
  EXPECT_LT(small, bigger);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransferMonotonicity,
                         ::testing::Values(64, 1024, 32 * 1024, 256 * 1024,
                                           1 << 20));

TEST(ResourceProperty, RandomOccupationsNeverOverlap) {
  sim::Rng rng(7);
  Resource r;
  std::vector<std::pair<Time, Time>> granted;  // [start, end)
  Time total = 0;
  for (int i = 0; i < 1000; ++i) {
    const Time ready = rng.below(10'000);
    const Time dur = 1 + rng.below(100);
    const Time end = r.occupy(ready, dur);
    EXPECT_GE(end, ready + dur);
    granted.emplace_back(end - dur, end);
    total += dur;
  }
  // The resource is serially reusable: no two granted occupations may
  // overlap, regardless of the (gap-filling) placement order.
  std::sort(granted.begin(), granted.end());
  for (std::size_t i = 1; i < granted.size(); ++i) {
    EXPECT_LE(granted[i - 1].second, granted[i].first);
  }
  EXPECT_EQ(r.total_busy(), total);
}

TEST(ResourceProperty, ConcurrentOccupationsConserveBusyTime) {
  Resource r;
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&r] {
      for (int i = 0; i < kOps; ++i) r.occupy(0, 10);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(r.total_busy(), static_cast<Time>(kThreads) * kOps * 10);
  EXPECT_EQ(r.busy_until(), static_cast<Time>(kThreads) * kOps * 10);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  using sim::Histogram;
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
  // Buckets tile the value range: [lo, hi) maps back to the bucket and
  // adjacent buckets share an edge.
  for (std::size_t b = 1; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b) << b;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b) - 1), b) << b;
    EXPECT_EQ(Histogram::bucket_lo(b + 1), Histogram::bucket_hi(b)) << b;
  }
}

TEST(Histogram, QuantilesTrackBulkAndTail) {
  sim::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10);
  h.record(1'000'000);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 101u);
  EXPECT_EQ(s.sum, 100u * 10 + 1'000'000u);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 1'000'000u);
  EXPECT_NEAR(s.mean(), (100.0 * 10 + 1e6) / 101.0, 1e-6);
  // p50/p95 fall in the bucket of 10 ([8,16)); the outlier only moves the
  // extreme quantiles. Log-bucketed, so exact within a factor of two.
  EXPECT_GE(s.p50(), 10u);
  EXPECT_LT(s.p50(), 16u);
  EXPECT_GE(s.p95(), 10u);
  EXPECT_LT(s.p95(), 16u);
  EXPECT_EQ(s.quantile(1.0), 1'000'000u);  // clamped to observed max
  EXPECT_LT(s.quantile(0.0), 16u);         // first sample's bucket
}

TEST(Histogram, ZeroValuesAndEmptySnapshot) {
  sim::Histogram h;
  const auto empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  h.record(0);
  h.record(0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p95(), 0u);
}

TEST(Histogram, SnapshotIsStableAndResetClears) {
  sim::Histogram h;
  h.record(5);
  const auto before = h.snapshot();
  h.record(500);  // must not alter the earlier snapshot
  EXPECT_EQ(before.count, 1u);
  EXPECT_EQ(before.max, 5u);
  h.reset();
  const auto after = h.snapshot();
  EXPECT_EQ(after.count, 0u);
  EXPECT_EQ(after.sum, 0u);
  EXPECT_EQ(after.max, 0u);
}

TEST(HistogramRegistry, NamedAccessAndSnapshotAll) {
  sim::HistogramRegistry reg;
  sim::Histogram& a = reg.get("via.send_latency_ns");
  EXPECT_EQ(&a, &reg.get("via.send_latency_ns"));  // stable identity
  reg.record("via.send_latency_ns", 100);
  reg.record("dafs.rtt_ns.read_direct", 2000);
  reg.get("empty.untouched");  // registered but empty -> omitted below
  const auto all = reg.snapshot_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("via.send_latency_ns").count, 1u);
  EXPECT_EQ(all.at("dafs.rtt_ns.read_direct").sum, 2000u);
  EXPECT_EQ(all.count("empty.untouched"), 0u);
  reg.reset();
  EXPECT_TRUE(reg.snapshot_all().empty());
}

TEST(HistogramRegistry, LivesInTheFabric) {
  Fabric f;
  f.histograms().record("layer.key_ns", 42);
  const auto all = f.histograms().snapshot_all();
  ASSERT_EQ(all.count("layer.key_ns"), 1u);
  EXPECT_EQ(all.at("layer.key_ns").count, 1u);
}

}  // namespace
