#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "sim/trace.hpp"

/// \file test_trace.cpp
/// Causal-tracing suite (ctest label `trace`): cross-wire span parenting,
/// retry-after-crash linking to the original trace, flight-recorder ring
/// eviction, JSON dump well-formedness, and the sampling-off overhead
/// guarantee (counter-verified).

namespace {

using mpi::Comm;
using mpi::Datatype;
using mpiio::File;
using mpiio::Info;
using sim::Actor;
using sim::ActorScope;
using sim::Span;
using sim::SpanScope;
using sim::Tracer;

constexpr std::uint64_t kChunk = 16 * 1024;

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::byte>(i & 0xff);
  return out;
}

std::vector<Span> spans_of(const std::vector<Span>& all, std::uint64_t trace,
                           const char* layer) {
  std::vector<Span> out;
  for (const Span& s : all) {
    if (s.trace_id == trace && std::string_view(s.layer) == layer) {
      out.push_back(s);
    }
  }
  return out;
}

bool has_span(const std::vector<Span>& all, std::uint64_t id) {
  return std::any_of(all.begin(), all.end(),
                     [&](const Span& s) { return s.span_id == id; });
}

// ---------------------------------------------------------------------------
// Cross-wire parenting: one collective write, four layers, one trace
// ---------------------------------------------------------------------------

TEST(Trace, CollectiveWriteParentsAcrossAllLayers) {
  sim::Fabric fabric;
  Tracer& tracer = fabric.trace();
  tracer.set_enabled(true);
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();

  mpi::WorldConfig wcfg;
  wcfg.nprocs = 2;
  wcfg.fabric = &fabric;
  wcfg.name = "trace";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    auto f = std::move(File::open(c, "/t.dat",
                                  mpiio::kModeCreate | mpiio::kModeRdwr,
                                  Info{}, mpiio::dafs_driver(*session))
                           .value());
    const auto data = pattern(kChunk);
    ASSERT_TRUE(f->write_at_all(c.rank() * kChunk, data.data(), kChunk,
                                Datatype::byte())
                    .ok());
    f->close();
  });

  const auto all = tracer.snapshot();

  // Find a root: an MPI-IO collective-write span with no parent.
  std::uint64_t trace_id = 0;
  Span root;
  for (const Span& s : all) {
    if (std::string_view(s.layer) == "mpiio" && s.name == "write_at_all" &&
        s.parent_span_id == 0) {
      root = s;
      trace_id = s.trace_id;
      break;
    }
  }
  ASSERT_NE(trace_id, 0u) << "no MPI-IO root span recorded";

  // The root's trace reaches every layer.
  const auto cli = spans_of(all, trace_id, "dafs.client");
  const auto srv = spans_of(all, trace_id, "dafs.server");
  const auto via_spans = spans_of(all, trace_id, "via");
  const auto fst = spans_of(all, trace_id, "fstore");
  EXPECT_FALSE(cli.empty()) << "no client request span in the trace";
  EXPECT_FALSE(srv.empty()) << "no server span crossed the wire";
  EXPECT_FALSE(via_spans.empty()) << "no VIA transfer span in the trace";
  EXPECT_FALSE(fst.empty()) << "no fstore span under the service span";

  // Client request spans parent under an MPI-IO span of the same trace.
  const auto mpiio_spans = spans_of(all, trace_id, "mpiio");
  for (const Span& s : cli) {
    EXPECT_TRUE(has_span(mpiio_spans, s.parent_span_id))
        << "client span " << s.name << " not parented under MPI-IO";
  }

  // Server spans parent either directly under a *client* span (the service
  // and admission_wait spans — their ids crossed the wire) or under another
  // server span of the same trace (reply_send nests inside the service
  // span). Either way every parent must resolve inside the trace.
  bool any_wire_parented = false;
  for (const Span& s : srv) {
    const bool under_client = has_span(cli, s.parent_span_id);
    any_wire_parented = any_wire_parented || under_client;
    EXPECT_TRUE(under_client || has_span(srv, s.parent_span_id))
        << "server span " << s.name << " (parent " << s.parent_span_id
        << ") dangles outside the trace";
  }
  EXPECT_TRUE(any_wire_parented)
      << "no server span parented under a client span: ids did not cross "
         "the wire";

  // Parent/child time containment for the spans we can pair up.
  for (const Span& child : srv) {
    for (const Span& parent : cli) {
      if (parent.span_id != child.parent_span_id) continue;
      EXPECT_GE(child.t_start, parent.t_start);
      EXPECT_LE(child.t_end, parent.t_end);
    }
  }
  EXPECT_GE(root.t_end, root.t_start);
}

// ---------------------------------------------------------------------------
// Crash + reclaim: the retried attempt stays in the original trace
// ---------------------------------------------------------------------------

TEST(Trace, RetryAfterCrashLinksToOriginalTrace) {
  sim::Fabric fabric;
  Tracer& tracer = fabric.trace();
  tracer.set_enabled(true);
  tracer.set_dump_path("trace_retry.json");
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 5;
  dafs::Server server(fabric, fabric.add_node("filer"), scfg);
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  dafs::RetryPolicy retry;
  retry.backoff_ns = 20'000;
  auto s = std::move(
      dafs::Session::connect(nic, dafs::single_mount("dafs", retry)).value());
  auto fh = s->open("/r.dat", dafs::kOpenCreate).value();
  const auto data = pattern(kChunk);
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());
  ASSERT_EQ(s->sync(fh), dafs::PStatus::kOk);

  // Arm a crash on the next admitted request: it fires while the read is
  // in flight, so the client recovers (reclaim) and retransmits — and the
  // retried wire attempt must carry the ORIGINAL ids, so everything lands
  // in root's trace.
  fabric.faults().arm(7);
  fabric.faults().crash_server_after_requests(1, /*restart_delay_ms=*/5);
  std::uint64_t trace_id = 0;
  {
    SpanScope root(tracer, "test", "read_across_crash", /*make_root=*/true);
    ASSERT_TRUE(root.active());
    trace_id = root.trace_id();
    std::vector<std::byte> back(kChunk);
    ASSERT_TRUE(s->pread(fh, 0, back).ok());
  }
  fabric.faults().clear();
  EXPECT_GE(fabric.stats().get("dafs.server_crashes"), 1u);
  EXPECT_GE(fabric.stats().get("dafs.session_reclaims"), 1u);

  // The crash auto-dumped the flight recorder, capturing the crash event
  // and the then-open (orphaned) root span of the interrupted read.
  {
    std::ifstream in("trace_retry.json.crash.json");
    ASSERT_TRUE(in.good()) << "crash did not auto-dump the flight recorder";
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("server_crash"), std::string::npos);
    EXPECT_NE(doc.find("\"in_flight\":1"), std::string::npos);
    EXPECT_NE(doc.find("read_across_crash"), std::string::npos);
  }
  std::remove("trace_retry.json.crash.json");
  tracer.set_dump_path("");  // keep the fabric dtor from writing a final dump

  const auto all = tracer.snapshot();
  const auto cli = spans_of(all, trace_id, "dafs.client");
  const auto srv = spans_of(all, trace_id, "dafs.server");
  ASSERT_FALSE(cli.empty());
  ASSERT_FALSE(srv.empty()) << "replayed request did not link to the root";
  // Exactly one client-visible read span: submit-to-completion covers the
  // whole recovery, however many wire attempts it took.
  const auto reads = std::count_if(cli.begin(), cli.end(), [](const Span& s) {
    return s.name.rfind("request.read", 0) == 0;
  });
  EXPECT_EQ(reads, 1);
  for (const Span& s : srv) {
    EXPECT_TRUE(has_span(cli, s.parent_span_id) ||
                has_span(srv, s.parent_span_id))
        << "server span " << s.name << " escaped the original trace";
  }
}

// ---------------------------------------------------------------------------
// Flight recorder: bounded ring evicts oldest, keeps newest
// ---------------------------------------------------------------------------

TEST(Trace, RingEvictionKeepsNewest) {
  Tracer t;
  t.set_enabled(true);
  t.set_ring_capacity(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Span s;
    s.trace_id = 1;
    s.span_id = i;
    s.t_start = i;
    s.t_end = i + 1;
    s.layer = "test";
    s.name = "s" + std::to_string(i);
    t.record(std::move(s));
  }
  EXPECT_EQ(t.spans_recorded(), 10u);
  EXPECT_EQ(t.spans_evicted(), 6u);
  const auto kept = t.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  // Newest four, oldest first.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].span_id, 7 + i);
  }
}

// ---------------------------------------------------------------------------
// Dump: well-formed JSON, escaping, open spans flagged in-flight
// ---------------------------------------------------------------------------

TEST(Trace, DumpJsonIsWellFormed) {
  Tracer t;
  t.set_enabled(true);
  {
    SpanScope a(t, "test", "outer", /*make_root=*/true);
    a.attr("bytes", std::uint64_t{4096});
    a.attr("note", "quo\"te\\and\nnewline");
    SpanScope b(t, "test", "inner");
    EXPECT_TRUE(b.active());
    EXPECT_EQ(b.trace_id(), a.trace_id());
  }
  t.event("server_crash", 42, "\"restart_delay_ms\":5");

  const char* path = "trace_test_dump.json";  // test cwd (build tree)
  ASSERT_TRUE(t.dump_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::remove(path);

  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.front(), '{');
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"outer\""), std::string::npos);
  EXPECT_NE(doc.find("\"inner\""), std::string::npos);
  EXPECT_NE(doc.find("server_crash"), std::string::npos);
  // The quote, backslash and newline in the attr were escaped.
  EXPECT_NE(doc.find("quo\\\"te\\\\and\\nnewline"), std::string::npos);
  // Braces balance (no quoting ambiguity: all strings above are escaped).
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char ch = doc[i];
    if (in_str) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_str = false;
      }
      continue;
    }
    if (ch == '"') in_str = true;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}

TEST(Trace, FlightDumpIncludesOpenSpans) {
  Tracer t;
  t.set_enabled(true);
  t.set_dump_path("trace_test_flight.json");
  SpanScope open_span(t, "test", "still_running", /*make_root=*/true);
  const std::string path = t.flight_dump("assert");
  ASSERT_EQ(path, "trace_test_flight.json.assert.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  std::remove(path.c_str());
  EXPECT_NE(doc.find("\"still_running\""), std::string::npos);
  EXPECT_NE(doc.find("\"in_flight\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampling: hint 0 disables root spans; nothing records anywhere
// ---------------------------------------------------------------------------

TEST(Trace, SampleHintZeroRecordsNothing) {
  sim::Fabric fabric;
  Tracer& tracer = fabric.trace();
  tracer.set_enabled(true);

  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  mpi::WorldConfig wcfg;
  wcfg.nprocs = 1;
  wcfg.fabric = &fabric;
  wcfg.name = "off";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    Info info;
    info.set("dafs_trace_sample", std::uint64_t{0});
    auto f = std::move(File::open(c, "/off.dat",
                                  mpiio::kModeCreate | mpiio::kModeRdwr, info,
                                  mpiio::dafs_driver(*session))
                           .value());
    const auto data = pattern(kChunk);
    const std::uint64_t before = tracer.spans_recorded();
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          f->write_at(i * kChunk, data.data(), kChunk, Datatype::byte()).ok());
    }
    std::vector<std::byte> back(kChunk);
    ASSERT_TRUE(f->read_at(0, back.data(), kChunk, Datatype::byte()).ok());
    // No root span ever opened, so no layer had an active context to attach
    // to: the recorded-span counter must not have moved at all.
    EXPECT_EQ(tracer.spans_recorded(), before);
    f->close();
  });
  EXPECT_EQ(tracer.snapshot().size(), 0u);
}

TEST(Trace, DisabledTracerIsInert) {
  Tracer t;  // never enabled
  {
    SpanScope root(t, "test", "root", /*make_root=*/true);
    EXPECT_FALSE(root.active());
    SpanScope child(t, "test", "child");
    EXPECT_FALSE(child.active());
  }
  EXPECT_EQ(t.spans_recorded(), 0u);
  EXPECT_FALSE(Tracer::current().active());
}

}  // namespace
