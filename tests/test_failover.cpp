#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"

/// \file test_failover.cpp
/// Dual-filer session failover suite (ctest label `failover`): a primary
/// filer streams its write-ahead journal to a standby over a dedicated VIA
/// channel; when the primary dies, clients mounted on both endpoints rotate
/// to the standby, which replays the shipped journal, honors the durable
/// duplicate filter (exactly-once across the failover) and serves lease
/// reclaims. A deposed primary that restarts learns its epoch is stale and
/// fences itself: stale-session traffic is rejected with kFenced and pushed
/// back onto the pair's new primary. The capstone is an 8-seed, 4-rank
/// crash-mid-collective sweep over the whole story.

namespace {

using dafs::PStatus;
using mpi::Comm;
using mpi::Datatype;
using mpiio::Err;
using mpiio::File;
using mpiio::Info;
using sim::Actor;
using sim::ActorScope;

using Role = dafs::Server::Role;

constexpr std::uint64_t kChunk = 32 * 1024;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

/// A failover mount over the pair, with test-speed backoffs and a per-rank
/// jitter stream.
dafs::MountSpec failover_cfg(std::uint64_t seed, int rank) {
  dafs::RetryPolicy retry;
  retry.backoff_ns = 20'000;
  retry.backoff_cap_ns = 2'000'000;
  retry.jitter_seed = seed * 131 + static_cast<std::uint64_t>(rank);
  return dafs::failover_mount({"dafs", "dafs-b"}, retry);
}

/// Primary ("dafs", journal shipped to "dafs-repl") + standby ("dafs-b",
/// importing on "dafs-repl") on their own nodes of one fabric.
struct FilerPair {
  sim::NodeId primary_node;
  sim::NodeId standby_node;
  std::unique_ptr<dafs::Server> primary;
  std::unique_ptr<dafs::Server> standby;

  explicit FilerPair(sim::Fabric& fabric, dafs::ServerConfig base = {}) {
    primary_node = fabric.add_node("filer-a");
    standby_node = fabric.add_node("filer-b");
    dafs::ServerConfig pcfg = base;
    pcfg.service = "dafs";
    pcfg.repl_peer = "dafs-repl";
    dafs::ServerConfig bcfg = base;
    bcfg.service = "dafs-b";
    bcfg.repl_listen = "dafs-repl";
    primary = std::make_unique<dafs::Server>(fabric, primary_node, pcfg);
    standby = std::make_unique<dafs::Server>(fabric, standby_node, bcfg);
    primary->start();
    standby->start();
  }

  ~FilerPair() {
    // Standby first: tearing the primary down first looks exactly like a
    // crash and would promote the standby mid-teardown.
    standby->stop();
    primary->stop();
  }

  /// Real-time wait for the standby to take over after a primary death.
  void wait_promoted() const {
    while (standby->role() != Role::kPrimary) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  /// Real-time wait for the restarted deposed primary to fence itself (its
  /// replication hello is answered "fenced" by the promoted standby).
  void wait_fenced() const {
    while (primary->role() != Role::kFenced) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

void wait_restart(dafs::Server& server) {
  while (server.crashed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------------
// Replication channel: the journal ships while both filers are healthy
// ---------------------------------------------------------------------------

TEST(Failover, JournalShipsToStandby) {
  sim::Fabric fabric;
  FilerPair pair(fabric);
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(
      dafs::Session::connect(nic, failover_cfg(1, 0)).value());
  EXPECT_EQ(s->endpoint_index(), 0u) << "fresh mount binds the primary";

  const auto data = pattern(kChunk, 11);
  auto fh = s->open("/ship.dat", dafs::kOpenCreate).value();
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());
  ASSERT_EQ(s->sync(fh), PStatus::kOk);
  ASSERT_TRUE(s->fetch_add("ship.ctr", 3).ok());

  // The sync and the counter are non-idempotent successes: the semi-sync
  // barrier held their responses until the standby acked the journal, so by
  // now the pair owes each other nothing.
  EXPECT_TRUE(pair.primary->repl_connected());
  EXPECT_GT(pair.primary->repl_acked_bytes(), 0u);
  EXPECT_EQ(pair.primary->repl_lag_bytes(), 0u);
  EXPECT_GT(fabric.stats().get("dafs.repl_shipped_bytes"), 0u);
  EXPECT_EQ(fabric.stats().get("dafs.repl_shipped_bytes"),
            fabric.stats().get("dafs.repl_applied_bytes"));
  EXPECT_EQ(pair.primary->role(), Role::kPrimary);
  EXPECT_EQ(pair.standby->role(), Role::kStandby);
  EXPECT_EQ(fabric.stats().get("dafs.promotions"), 0u);
  s.reset();
}

// ---------------------------------------------------------------------------
// The basic failover: crash the primary, the session rotates to the standby
// ---------------------------------------------------------------------------

TEST(Failover, SessionRotatesToPromotedStandby) {
  sim::Fabric fabric;
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 10;
  FilerPair pair(fabric, scfg);
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(
      dafs::Session::connect(nic, failover_cfg(2, 0)).value());

  // Durable state minted on the primary: synced bytes and a counter.
  const auto data = pattern(2 * kChunk, 21);
  auto fh = s->open("/fo.dat", dafs::kOpenCreate).value();
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());
  ASSERT_EQ(s->sync(fh), PStatus::kOk);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(s->fetch_add("fo.ctr", 5).ok());

  // Kill the primary with a restart delay far beyond the failover time:
  // rotating to the standby is the only way the next op can succeed.
  pair.primary->inject_crash(/*restart_delay_ms=*/250);
  pair.wait_promoted();
  EXPECT_GE(fabric.stats().get("dafs.promotions"), 1u);
  EXPECT_GE(pair.standby->epoch(), 2u) << "promotion bumps the fencing epoch";

  // Transparent recovery onto the standby: the synced image and the
  // exactly-once counter history came over in the shipped journal.
  std::vector<std::byte> back(data.size());
  ASSERT_TRUE(s->pread(fh, 0, back).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0)
      << "synced bytes must survive the failover byte-exact";
  EXPECT_EQ(s->endpoint_index(), 1u);
  EXPECT_EQ(s->active_service(), "dafs-b");
  EXPECT_EQ(s->failovers(), 1u);
  EXPECT_GE(fabric.stats().get("dafs.failovers"), 1u);
  auto ctr = s->fetch_add("fo.ctr", 0);
  ASSERT_TRUE(ctr.ok());
  EXPECT_EQ(ctr.value(), 20u) << "counter adds must apply exactly once";

  // The pair keeps serving: new writes land on the new primary.
  ASSERT_TRUE(s->pwrite(fh, data.size(), pattern(kChunk, 22)).ok());
  ASSERT_EQ(s->sync(fh), PStatus::kOk);
  s.reset();
}

// ---------------------------------------------------------------------------
// Fencing: a deposed primary that restarts must reject stale sessions
// ---------------------------------------------------------------------------

TEST(Failover, DeposedPrimaryFencesItselfAndRejectsStaleSessions) {
  sim::Fabric fabric;
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 10;
  FilerPair pair(fabric, scfg);
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");

  // Two sessions bound to the primary. A fails over during the outage; B
  // sits out the crash and only notices once the deposed primary is back.
  auto a = std::move(dafs::Session::connect(nic, failover_cfg(3, 0)).value());
  auto b = std::move(dafs::Session::connect(nic, failover_cfg(3, 1)).value());
  auto fa = a->open("/fence.dat", dafs::kOpenCreate).value();
  ASSERT_TRUE(a->pwrite(fa, 0, pattern(kChunk, 31)).ok());
  ASSERT_EQ(a->sync(fa), PStatus::kOk);
  auto fb = b->open("/fence.dat").value();
  ASSERT_TRUE(b->fetch_add("fence.ctr", 2).ok());

  pair.primary->inject_crash(/*restart_delay_ms=*/30);
  pair.wait_promoted();
  std::vector<std::byte> probe(16);
  ASSERT_TRUE(a->pread(fa, 0, probe).ok());
  // Under sanitizer timing the 30 ms restart can beat this probe, in which
  // case A's rotation was triggered by a fenced rejection (which demotes,
  // reordering the list) rather than a dead listener — identify the landing
  // endpoint by service, not position.
  EXPECT_EQ(a->active_service(), "dafs-b");

  // The restarted primary reconnects its replication channel, learns from
  // the promoted standby that its epoch is stale, and fences itself.
  wait_restart(*pair.primary);
  pair.wait_fenced();
  EXPECT_EQ(pair.primary->role(), Role::kFenced);
  EXPECT_LT(pair.primary->epoch(), pair.standby->epoch());

  // B wakes up and retries against its old home: the fenced filer rejects
  // the stale-session traffic, B rotates, reclaims on the new primary and
  // the op succeeds — with the pre-crash counter history intact.
  const std::uint64_t fenced_before =
      fabric.stats().get("dafs.fenced_rejections");
  auto ctr = b->fetch_add("fence.ctr", 0);
  ASSERT_TRUE(ctr.ok());
  EXPECT_EQ(ctr.value(), 2u);
  // Fenced rejection demotes the deposed filer to the back of the rotation,
  // so identify the endpoint by service, not position.
  EXPECT_EQ(b->active_service(), "dafs-b");
  EXPECT_TRUE(b->pread(fb, 0, probe).ok());
  EXPECT_GT(fabric.stats().get("dafs.fenced_rejections"), fenced_before)
      << "the deposed primary must have turned B away";

  // A fresh single-endpoint mount of the fenced filer is refused outright...
  dafs::RetryPolicy fast;
  fast.attempts = 2;
  fast.backoff_ns = 1'000;
  fast.backoff_cap_ns = 4'000;
  auto refused =
      dafs::Session::connect(nic, dafs::single_mount("dafs", fast));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error(), PStatus::kFenced);

  // ...while a failover mount rotates past it and lands on the new primary.
  auto fresh = dafs::Session::connect(nic, failover_cfg(3, 2));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value()->active_service(), "dafs-b");
  fresh.value().reset();
  b.reset();
  a.reset();
}

// ---------------------------------------------------------------------------
// The capstone: seeded crash-mid-collective sweep over the pair
// ---------------------------------------------------------------------------

/// One seed: a 4-rank world writes a durable baseline through the primary,
/// then the crash schedule kills the primary mid-collective-write. Every
/// rank must finish through the standby: synced bytes byte-exact, counter
/// mutations exactly-once, and the deposed primary fenced off. Restart
/// delays are long relative to failover, so waiting out the outage (the
/// pre-pair PR's only option) can never be what made the seed pass.
void run_failover_world(std::uint64_t seed) {
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr int kRanks = 4;
  constexpr int kAdds = 5;
  constexpr std::uint64_t kDelta = 7;

  sim::Fabric fabric;
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 10;
  FilerPair pair(fabric, scfg);

  mpi::WorldConfig wcfg;
  wcfg.nprocs = kRanks;
  wcfg.fabric = &fabric;
  wcfg.name = "failover";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(
        dafs::Session::connect(nic, failover_cfg(seed, c.rank())).value());
    auto fa = std::move(File::open(c, "/a.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*session))
                            .value());
    auto fb = std::move(File::open(c, "/b.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*session))
                            .value());
    auto poll_fh = session->open("/a.dat").value();

    // Phase 1 (healthy pair): durable baseline. The sync barrier also means
    // the journal carrying these bytes was acked by the standby, so the
    // baseline must survive the failover byte-exact.
    const std::uint64_t off = c.rank() * kChunk;
    const auto da = pattern(kChunk, 1000 + seed * 10 + c.rank());
    ASSERT_TRUE(fa->write_at_all(off, da.data(), kChunk, Datatype::byte()).ok());
    ASSERT_EQ(fa->sync(), Err::kOk);
    c.barrier();

    // Arm: kill the primary — and only the primary — a handful of admitted
    // requests into phase 2, with a restart delay far beyond the failover
    // time. Odd seeds add transfer delays on the client connections to
    // shake up the interleaving.
    if (c.rank() == 0) {
      auto& plan = fabric.faults();
      plan.arm(seed);
      plan.restrict_crash_to_node(pair.primary_node);
      plan.crash_server_after_requests(2 + seed * 3,
                                       /*restart_delay_ms=*/60);
      if (seed % 2 == 1) {
        plan.restrict_to_conn("dafs");
        plan.set_delay(0.2, 30'000);
      }
    }
    c.barrier();

    // Phase 2 (crash lands here): collective writes plus counter traffic.
    // Failover is transparent, so every op must eventually succeed.
    const auto db = pattern(kChunk, 2000 + seed * 10 + c.rank());
    bool ok = false;
    for (int t = 0; t < 8 && !ok; ++t) {
      ok = fb->write_at_all(off, db.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "collective write across failover, seed " << seed;
    for (int i = 0; i < kAdds; ++i) {
      auto r = session->fetch_add("fo.ctr", kDelta);
      ASSERT_TRUE(r.ok()) << "fetch_add " << i << ", seed " << seed << ": "
                          << dafs::to_string(r.error());
    }
    c.barrier();

    // Make sure the armed crash actually fired, then wait for the takeover.
    if (c.rank() == 0) {
      int guard = 0;
      while (fabric.stats().get("dafs.server_crashes") == 0 && guard++ < 500) {
        (void)session->getattr(poll_fh);
      }
      EXPECT_GE(fabric.stats().get("dafs.server_crashes"), 1u)
          << "seed " << seed;
      pair.wait_promoted();
      fabric.faults().clear();
    }
    c.barrier();

    // Phase 3 (on the standby): rewrite /b.dat clean and sync — acked but
    // un-synced phase-2 bytes legally died with the primary — then verify
    // the durable baseline never moved.
    ok = false;
    for (int t = 0; t < 8 && !ok; ++t) {
      ok = fb->write_at_all(off, db.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "clean rewrite, seed " << seed;
    ASSERT_EQ(fb->sync(), Err::kOk);

    std::vector<std::byte> back(kChunk);
    ASSERT_TRUE(fa->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), da.data(), kChunk), 0)
        << "synced baseline after failover, seed " << seed;
    ASSERT_TRUE(fb->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), db.data(), kChunk), 0);
    EXPECT_EQ(session->active_service(), "dafs-b")
        << "rank " << c.rank() << " must have rotated, seed " << seed;

    fa->close();
    fb->close();
  });

  // Every rank's session crossed over, and exactly one promotion happened.
  EXPECT_GE(fabric.stats().get("dafs.failovers"),
            static_cast<std::uint64_t>(kRanks))
      << "seed " << seed;
  EXPECT_EQ(fabric.stats().get("dafs.promotions"), 1u) << "seed " << seed;
  EXPECT_EQ(pair.standby->role(), Role::kPrimary) << "seed " << seed;

  // Exactly-once across the failover, checked through a pristine failover
  // mount (it rotates past the fenced or still-down old primary on its own).
  {
    const auto node = fabric.add_node("verify");
    Actor actor("verify", &fabric.node(node));
    ActorScope scope(actor);
    via::Nic nic(fabric, node, "vnic");
    auto s = std::move(
        dafs::Session::connect(nic, failover_cfg(seed, 99)).value());
    // A fenced rejection from the old primary demotes it, reordering the
    // endpoint list — identify the landing endpoint by service, not position.
    EXPECT_EQ(s->active_service(), "dafs-b") << "seed " << seed;
    EXPECT_EQ(s->fetch_add("fo.ctr", 0).value(),
              static_cast<std::uint64_t>(kRanks) * kAdds * kDelta)
        << "seed " << seed;
    for (const char* path : {"/a.dat", "/b.dat"}) {
      auto fh = s->open(path).value();
      const std::uint64_t base =
          std::string_view(path) == "/a.dat" ? 1000 : 2000;
      std::vector<std::byte> all(kRanks * kChunk);
      auto rd = s->pread(fh, 0, all);
      EXPECT_TRUE(rd.ok());
      if (!rd.ok()) continue;
      for (int r = 0; r < kRanks; ++r) {
        const auto expect = pattern(kChunk, base + seed * 10 + r);
        EXPECT_EQ(std::memcmp(all.data() + r * kChunk, expect.data(), kChunk),
                  0)
            << path << " rank " << r << " seed " << seed;
      }
    }
    s.reset();
  }

  EXPECT_LT(std::chrono::steady_clock::now() - wall_start,
            std::chrono::seconds(60))
      << "seed " << seed;
}

TEST(Failover, SeededCrashMidCollectiveSweep) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) run_failover_world(seed);
}

}  // namespace
