#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "sim/histogram.hpp"
#include "sim/metric_key.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/timeseries.hpp"

/// \file test_telemetry.cpp
/// Live-telemetry suite (ctest label `telemetry`): the metric-key hygiene
/// predicate, JSON escaping in the metrics exporter, RAII gauge scopes, the
/// bounded time-series sampler, and the in-band kStatsQuery plane — the
/// snapshot must match independently-accumulated per-client ground truth,
/// the query must succeed while admission control is shedding everything,
/// and a seeded crash/restart sweep must leave no dangling gauges and no
/// time-regression in the sampled rings.

namespace {

using dafs::ClientConfig;
using dafs::Fh;
using dafs::PStatus;
using dafs::Server;
using dafs::ServerConfig;
using dafs::Session;
using dafs::StatsSnapshot;
using sim::Actor;
using sim::ActorScope;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

// ---------------------------------------------------------------------------
// Metric-key hygiene (sim/metric_key.hpp)
// ---------------------------------------------------------------------------

TEST(MetricKey, AcceptsDottedLowercase) {
  EXPECT_TRUE(sim::valid_metric_key("dafs.busy_shed"));
  EXPECT_TRUE(sim::valid_metric_key("dafs.rtt_ns.read_inline"));
  EXPECT_TRUE(sim::valid_metric_key("dafs.session.42.bytes_in"));
  EXPECT_TRUE(sim::valid_metric_key("a.b"));
  EXPECT_TRUE(sim::valid_metric_key("via.rdma_write_bytes"));
}

TEST(MetricKey, RejectsMalformedKeys) {
  EXPECT_FALSE(sim::valid_metric_key(""));
  EXPECT_FALSE(sim::valid_metric_key("nodots"));
  EXPECT_FALSE(sim::valid_metric_key(".leading.dot"));
  EXPECT_FALSE(sim::valid_metric_key("trailing.dot."));
  EXPECT_FALSE(sim::valid_metric_key("empty..component"));
  EXPECT_FALSE(sim::valid_metric_key("Upper.Case"));
  EXPECT_FALSE(sim::valid_metric_key("bad key.space"));
  EXPECT_FALSE(sim::valid_metric_key("bad\"quote.key"));
  EXPECT_FALSE(sim::valid_metric_key("hy-phen.key"));
}

#ifndef NDEBUG
TEST(MetricKeyDeathTest, CounterRegistrationAsserts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  sim::Stats stats;
  EXPECT_DEATH_IF_SUPPORTED(stats.add("NotAValidKey"), "dotted lowercase");
}
#endif

// ---------------------------------------------------------------------------
// JSON escaping in the exporter
// ---------------------------------------------------------------------------

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(sim::json_escape("plain.key"), "plain.key");
  EXPECT_EQ(sim::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(sim::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(sim::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(sim::json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(sim::json_escape("\r\b\f"), "\\r\\b\\f");
}

#ifdef NDEBUG
// Release builds compile the hygiene asserts out, so a hostile key CAN reach
// the exporter — and must corrupt only its own name, never the document.
TEST(JsonEscape, HostileGaugeKeyStaysValidJson) {
  sim::Stats stats;
  sim::HistogramRegistry hists;
  sim::MetricsRegistry reg(stats, hists);
  reg.register_gauge("evil\"key\\with\ncontrols", [] {
    return std::uint64_t{7};
  });
  const std::string doc = reg.to_json("hostile");
  EXPECT_NE(doc.find("evil\\\"key\\\\with\\ncontrols"), std::string::npos);
  // No raw quote-injection survived: every '"' is structural or escaped.
  EXPECT_EQ(doc.find("evil\"key"), std::string::npos);
  reg.unregister_gauge("evil\"key\\with\ncontrols");
}
#endif

// ---------------------------------------------------------------------------
// GaugeScope + registry semantics
// ---------------------------------------------------------------------------

TEST(GaugeScope, RegistersAndUnregistersRaii) {
  sim::Stats stats;
  sim::HistogramRegistry hists;
  sim::MetricsRegistry reg(stats, hists);
  {
    sim::GaugeScope g(reg, "test.gauge", [] { return std::uint64_t{11}; });
    EXPECT_TRUE(g.armed());
    auto s = reg.sample_gauges();
    ASSERT_EQ(s.count("test.gauge"), 1u);
    EXPECT_EQ(s["test.gauge"], 11u);
  }
  EXPECT_EQ(reg.sample_gauges().count("test.gauge"), 0u);
}

TEST(GaugeScope, MoveTransfersOwnershipAndResetIsIdempotent) {
  sim::Stats stats;
  sim::HistogramRegistry hists;
  sim::MetricsRegistry reg(stats, hists);
  sim::GaugeScope a(reg, "test.moved", [] { return std::uint64_t{1}; });
  sim::GaugeScope b(std::move(a));
  EXPECT_FALSE(a.armed());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(b.armed());
  EXPECT_EQ(reg.sample_gauges().count("test.moved"), 1u);
  b.reset();
  b.reset();  // idempotent
  EXPECT_EQ(reg.sample_gauges().count("test.moved"), 0u);
}

TEST(MetricsRegistry, GaugeReplacementLastWins) {
  sim::Stats stats;
  sim::HistogramRegistry hists;
  sim::MetricsRegistry reg(stats, hists);
  reg.register_gauge("test.replaced", [] { return std::uint64_t{1}; });
  reg.register_gauge("test.replaced", [] { return std::uint64_t{2}; });
  auto s = reg.sample_gauges();
  ASSERT_EQ(s.count("test.replaced"), 1u);
  EXPECT_EQ(s["test.replaced"], 2u);
  reg.unregister_gauge("test.replaced");
  EXPECT_EQ(reg.sample_gauges().count("test.replaced"), 0u);
}

TEST(MetricsRegistry, ConcurrentRegisterAndExport) {
  sim::Stats stats;
  sim::HistogramRegistry hists;
  sim::MetricsRegistry reg(stats, hists);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&reg, w] {
      const std::string key = "test.worker" + std::to_string(w) + ".val";
      for (int i = 0; i < 400; ++i) {
        sim::GaugeScope g(reg, key, [i] {
          return static_cast<std::uint64_t>(i);
        });
        // Scope dies each iteration: register/unregister churn under export.
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      const std::string doc = reg.to_json("concurrent");
      EXPECT_FALSE(doc.empty());
      (void)reg.sample_gauges();
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(reg.sample_gauges().size(), 0u);
}

// ---------------------------------------------------------------------------
// Time-series sampler
// ---------------------------------------------------------------------------

TEST(TimeSeries, RingsAreBoundedAndStrictlyMonotone) {
  sim::Stats stats;
  sim::HistogramRegistry hists;
  sim::MetricsRegistry reg(stats, hists);
  std::uint64_t gauge_val = 0;
  reg.register_gauge("test.depth", [&gauge_val] { return gauge_val; });

  sim::TimeSeriesConfig cfg;
  cfg.interval_ns = 10;
  cfg.capacity = 4;
  cfg.counters = {"test.events"};
  reg.enable_timeseries(cfg);
  sim::TimeSeries* ts = reg.timeseries();
  ASSERT_NE(ts, nullptr);

  for (std::uint64_t t = 10; t <= 100; t += 10) {
    gauge_val = t;
    stats.add("test.events", 3);
    reg.tick(t);
    reg.tick(t);      // same timestamp: ignored
    reg.tick(t - 5);  // time going backwards: ignored
  }
  const auto rings = ts->snapshot();
  ASSERT_EQ(rings.count("test.depth"), 1u);
  ASSERT_EQ(rings.count("test.events"), 1u);
  for (const auto& [key, pts] : rings) {
    ASSERT_LE(pts.size(), cfg.capacity) << key;
    ASSERT_EQ(pts.size(), cfg.capacity) << key;  // 10 samples into 4 slots
    for (std::size_t i = 1; i < pts.size(); ++i) {
      EXPECT_LT(pts[i - 1].t, pts[i].t) << key;
    }
  }
  // Oldest points dropped: the ring ends at the last sample time.
  EXPECT_EQ(rings.at("test.depth").back().t, 100u);
  EXPECT_EQ(rings.at("test.depth").back().v, 100u);
  // Counters are deltas per interval, not cumulative counts.
  for (const auto& p : rings.at("test.events")) EXPECT_EQ(p.v, 3u);
  EXPECT_EQ(ts->samples(), 10u);
  reg.unregister_gauge("test.depth");
}

TEST(TimeSeries, IntervalGatesSampling) {
  sim::Stats stats;
  sim::HistogramRegistry hists;
  sim::MetricsRegistry reg(stats, hists);
  sim::TimeSeriesConfig cfg;
  cfg.interval_ns = 100;
  cfg.counters = {"test.ticks"};
  reg.enable_timeseries(cfg);
  reg.tick(5);    // first tick always samples
  reg.tick(50);   // inside the interval: ignored
  reg.tick(104);  // 99 ns after the first: still inside
  reg.tick(105);  // exactly one interval later: samples
  EXPECT_EQ(reg.timeseries()->samples(), 2u);
}

TEST(TimeSeries, ExportedInMetricsJson) {
  sim::Stats stats;
  sim::HistogramRegistry hists;
  sim::MetricsRegistry reg(stats, hists);
  EXPECT_EQ(reg.to_json("plain").find("\"timeseries\""), std::string::npos);
  sim::TimeSeriesConfig cfg;
  cfg.interval_ns = 1;
  cfg.counters = {"test.c"};
  reg.enable_timeseries(cfg);
  stats.add("test.c", 2);
  reg.tick(7);
  const std::string doc = reg.to_json("with_ts");
  EXPECT_NE(doc.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(doc.find("\"interval_ns\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"test.c\""), std::string::npos);
  reg.disable_timeseries();
  EXPECT_EQ(reg.to_json("off").find("\"timeseries\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// In-band kStatsQuery plane
// ---------------------------------------------------------------------------

/// Fabric + filer + two client rigs with fixed client ids, so the server's
/// attribution table is diffable against ground truth.
class TelemetryTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kIdA = 7001;
  static constexpr std::uint64_t kIdB = 7002;

  TelemetryTest()
      : server_node_(fabric_.add_node("filer")),
        node_a_(fabric_.add_node("client-a")),
        node_b_(fabric_.add_node("client-b")),
        server_(fabric_, server_node_, ServerConfig{}),
        nic_a_(fabric_, node_a_, "nic-a"),
        nic_b_(fabric_, node_b_, "nic-b"),
        actor_a_("client-a", &fabric_.node(node_a_)),
        actor_b_("client-b", &fabric_.node(node_b_)) {
    server_.start();
  }

  static dafs::MountSpec spec_for(std::uint64_t client_id,
                                  int max_busy_retries = 64) {
    dafs::RetryPolicy retry;
    retry.backoff_ns = 10'000;
    retry.backoff_cap_ns = 500'000;
    retry.max_busy_retries = max_busy_retries;
    dafs::ClientConfig ccfg;
    ccfg.client_id = client_id;
    return dafs::single_mount("dafs", retry, ccfg);
  }

  std::unique_ptr<Session> Connect(Actor& actor, via::Nic& nic,
                                   dafs::MountSpec spec) {
    ActorScope scope(actor);
    auto r = Session::connect(nic, std::move(spec));
    EXPECT_TRUE(r.ok());
    return r.ok() ? std::move(r.value()) : nullptr;
  }

  sim::Fabric fabric_;
  sim::NodeId server_node_, node_a_, node_b_;
  Server server_;
  via::Nic nic_a_, nic_b_;
  Actor actor_a_, actor_b_;
};

TEST_F(TelemetryTest, SnapshotMatchesPerSessionGroundTruth) {
  auto sa = Connect(actor_a_, nic_a_, spec_for(kIdA));
  auto sb = Connect(actor_b_, nic_b_, spec_for(kIdB));
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);

  const auto small = pattern(512, 1);     // inline path
  const auto large = pattern(64 * 1024, 2);  // direct path
  {
    ActorScope scope(actor_a_);
    auto fh = sa->open("/a.bin", dafs::kOpenCreate);
    ASSERT_TRUE(fh.ok());
    for (int i = 0; i < 3; ++i) {
      auto w = sa->pwrite(fh.value(), i * 512u, small);
      ASSERT_TRUE(w.ok());
    }
    std::vector<std::byte> back(512);
    ASSERT_TRUE(sa->pread(fh.value(), 0, back).ok());
    ASSERT_TRUE(sa->pread(fh.value(), 512, back).ok());
    ASSERT_TRUE(sa->getattr(fh.value()).ok());
  }
  {
    ActorScope scope(actor_b_);
    auto fh = sb->open("/b.bin", dafs::kOpenCreate);
    ASSERT_TRUE(fh.ok());
    ASSERT_TRUE(sb->pwrite(fh.value(), 0, large).ok());
    std::vector<std::byte> back(large.size());
    ASSERT_TRUE(sb->pread(fh.value(), 0, back).ok());
  }

  StatsSnapshot snap;
  {
    ActorScope scope(actor_a_);
    auto r = sa->query_stats();
    ASSERT_TRUE(r.ok());
    snap = std::move(r).value();
  }
  EXPECT_EQ(snap.header.version, dafs::kStatsVersion);
  EXPECT_EQ(snap.header.truncated, 0u);
  // 2 connected clients + the pre-armed session the accept loop keeps ready
  // for the next connect (it lives in the session table before accept).
  EXPECT_GE(snap.header.sessions_live, 2u);
  EXPECT_LE(snap.header.sessions_live, 3u);
  EXPECT_EQ(snap.header.crash_count, 0u);

  const auto* a = snap.find_client(kIdA);
  const auto* b = snap.find_client(kIdB);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Ground truth, client A: 3 inline writes, 2 inline reads, open + getattr
  // as metadata. (The first kConnect carries no identity yet, so it is not
  // attributed — exactly the 0-sentinel contract.)
  EXPECT_EQ(a->ops_write, 3u);
  EXPECT_EQ(a->ops_read, 2u);
  EXPECT_EQ(a->ops_meta, 2u);
  EXPECT_EQ(a->sheds, 0u);
  EXPECT_EQ(a->retransmits, 0u);
  EXPECT_GT(a->bytes_in, 3u * 512u);  // payloads ride in the request wire
  EXPECT_GT(a->bytes_out, 2u * 512u);
  // Client B: 1 direct write, 1 direct read; the RDMA payload bytes must be
  // attributed even though they never ride the message wire.
  EXPECT_EQ(b->ops_write, 1u);
  EXPECT_EQ(b->ops_read, 1u);
  EXPECT_GT(b->bytes_in, 64u * 1024u);
  EXPECT_GT(b->bytes_out, 64u * 1024u);
  EXPECT_GT(a->service_ns, 0u);
  EXPECT_GT(b->service_ns, 0u);

  // The wire table must agree exactly with the server's own accounting.
  const auto truth = server_.client_stats();
  ASSERT_EQ(truth.count(kIdB), 1u);
  const auto& tb = truth.at(kIdB);
  EXPECT_EQ(b->bytes_in, tb.bytes_in);
  EXPECT_EQ(b->bytes_out, tb.bytes_out);
  EXPECT_EQ(b->ops_read, tb.ops_read);
  EXPECT_EQ(b->ops_write, tb.ops_write);
  EXPECT_EQ(b->ops_meta, tb.ops_meta);
  EXPECT_EQ(b->service_ns, tb.service_ns);
  EXPECT_EQ(b->queue_wait_ns, tb.queue_wait_ns);

  // kv section carries the aggregate counters the header summarizes.
  EXPECT_EQ(snap.value("dafs.requests"), snap.header.requests_total);
  EXPECT_GE(snap.value("dafs.sessions_live"), 2u);

  ActorScope sb_scope(actor_b_);
  sb.reset();
  ActorScope sa_scope(actor_a_);
  sa.reset();
}

TEST_F(TelemetryTest, StatsQueryServedWhileAdmissionSheds) {
  // Tiny busy-retry budget: the data plane must *fail* with kBusy while the
  // stats plane keeps answering.
  auto sa = Connect(actor_a_, nic_a_, spec_for(kIdA, /*max_busy_retries=*/2));
  auto sb = Connect(actor_b_, nic_b_, spec_for(kIdB));
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);

  Fh fh;
  const auto small = pattern(512, 3);
  {
    ActorScope scope(actor_a_);
    auto r = sa->open("/shed.bin", dafs::kOpenCreate);
    ASSERT_TRUE(r.ok());
    fh = r.value();
  }

  server_.set_admission_limit(0);  // drain mode: shed every data-plane op
  {
    ActorScope scope(actor_a_);
    auto w = sa->pwrite(fh, 0, small);
    ASSERT_FALSE(w.ok());
    EXPECT_EQ(w.error(), PStatus::kBusy);
  }
  // The monitor's query rides the same saturated server and must succeed.
  StatsSnapshot snap;
  {
    ActorScope scope(actor_b_);
    auto r = sb->query_stats();
    ASSERT_TRUE(r.ok()) << "stats query must bypass admission control";
    snap = std::move(r).value();
  }
  EXPECT_EQ(snap.header.admission_limit, 0u);
  EXPECT_GE(snap.header.busy_sheds, 1u);
  const auto* a = snap.find_client(kIdA);
  ASSERT_NE(a, nullptr);
  EXPECT_GE(a->sheds, 1u) << "sheds must be attributed to the shed client";

  server_.set_admission_limit(256);
  {
    ActorScope scope(actor_a_);
    auto w = sa->pwrite(fh, 0, small);
    EXPECT_TRUE(w.ok()) << "data plane recovers once the limit is restored";
  }
  ActorScope sb_scope(actor_b_);
  sb.reset();
  ActorScope sa_scope(actor_a_);
  sa.reset();
}

// ---------------------------------------------------------------------------
// Crash/restart chaos: gauges must never dangle, rings must never regress
// ---------------------------------------------------------------------------

TEST(TelemetryChaos, CrashRestartLeavesNoDanglingGaugesAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    sim::Fabric fabric;
    sim::TimeSeriesConfig tscfg;
    tscfg.interval_ns = 5'000;
    tscfg.counters = {"dafs.requests", "dafs.busy_shed"};
    fabric.metrics().enable_timeseries(tscfg);

    const auto server_node = fabric.add_node("filer");
    const auto client_node = fabric.add_node("client");
    ServerConfig scfg;
    scfg.grace_period_ms = 5;
    auto server = std::make_unique<Server>(fabric, server_node, scfg);
    server->start();

    via::Nic nic(fabric, client_node, "nic");
    Actor actor("client", &fabric.node(client_node));
    dafs::RetryPolicy retry;
    retry.backoff_ns = 20'000;
    retry.backoff_cap_ns = 2'000'000;
    retry.jitter_seed = seed;
    ClientConfig ccfg;
    ccfg.client_id = 9000 + seed;
    std::unique_ptr<Session> session;
    {
      ActorScope scope(actor);
      auto r = Session::connect(nic, dafs::single_mount("dafs", retry, ccfg));
      ASSERT_TRUE(r.ok());
      session = std::move(r).value();
    }

    const auto data = pattern(8 * 1024, seed);
    Fh fh;
    {
      ActorScope scope(actor);
      auto r = session->open("/chaos.bin", dafs::kOpenCreate);
      ASSERT_TRUE(r.ok());
      fh = r.value();
      for (int i = 0; i < 4 + static_cast<int>(seed % 3); ++i) {
        ASSERT_TRUE(session->pwrite(fh, i * data.size(), data).ok());
      }
      ASSERT_EQ(session->sync(fh), PStatus::kOk);
    }

    server->inject_crash(3 + seed % 4);
    // Export while the server is down: every gauge callback must still be
    // backed by a live object (the Server is crashed, not destroyed).
    EXPECT_FALSE(fabric.metrics().to_json("mid_crash").empty());
    while (server->crashed()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    {
      // The next op rides session recovery (reconnect + lease reclaim).
      ActorScope scope(actor);
      ASSERT_TRUE(session->pwrite(fh, 0, data).ok());
      auto snap = session->query_stats();
      ASSERT_TRUE(snap.ok());
      EXPECT_GE(snap.value().header.crash_count, 1u);
      const auto* me = snap.value().find_client(9000 + seed);
      ASSERT_NE(me, nullptr);
      EXPECT_GE(me->ops_write, 5u) << "attribution survives the restart";
    }

    // Rings stay strictly monotone in sim time across the crash.
    ASSERT_NE(fabric.metrics().timeseries(), nullptr);
    const auto rings = fabric.metrics().timeseries()->snapshot();
    EXPECT_FALSE(rings.empty());
    for (const auto& [key, pts] : rings) {
      for (std::size_t i = 1; i < pts.size(); ++i) {
        ASSERT_LT(pts[i - 1].t, pts[i].t) << key;
      }
    }

    {
      ActorScope scope(actor);
      session.reset();
    }
    server.reset();
    // Every dafs.* / fstore.* gauge must be gone with the server; a sample
    // or export now must neither crash nor show stale keys.
    const auto gauges = fabric.metrics().sample_gauges();
    for (const auto& [key, value] : gauges) {
      EXPECT_EQ(key.rfind("dafs.", 0), std::string::npos) << key;
      EXPECT_EQ(key.rfind("fstore.", 0), std::string::npos) << key;
    }
    EXPECT_FALSE(fabric.metrics().to_json("post_teardown").empty());
  }
}

}  // namespace
