#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "fstore/journal.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"

/// \file test_quorum.cpp
/// Quorum-replicated filer group suite (ctest label `raft`): N >= 3 filers
/// elect a leader with randomized timeouts over the replication channel, the
/// leader ships journal bytes with (term, offset) matching and acknowledges
/// non-idempotent work only at majority commit, and the fencing epoch is the
/// consensus term. Followers answer clients kNotLeader with a leader hint;
/// the client mount follows the hint (or demotes the refusing endpoint to
/// the back of its rotation). Capstones: seeded kill-the-leader and
/// partition-the-leader sweeps mid-collective-write at 3 and 5 replicas —
/// no acknowledged write lost, counters exactly-once, and the deposed
/// member re-silvers back to a byte-identical journal without help.

namespace {

using dafs::PStatus;
using mpi::Comm;
using mpi::Datatype;
using mpiio::Err;
using mpiio::File;
using mpiio::Info;
using sim::Actor;
using sim::ActorScope;

using Role = dafs::Server::Role;

constexpr std::uint64_t kChunk = 32 * 1024;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

/// N quorum members on their own nodes: member i serves clients at
/// "dafs-q<i>" and the group's consensus traffic runs over
/// "dafs-raft-<i>" (every member lists all of them, index = member id).
struct FilerGroup {
  sim::Fabric& fabric;
  std::vector<sim::NodeId> nodes;
  std::vector<std::unique_ptr<dafs::Server>> members;

  FilerGroup(sim::Fabric& f, std::size_t n, dafs::ServerConfig base = {})
      : fabric(f) {
    std::vector<std::string> group;
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back("dafs-raft-" + std::to_string(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(f.add_node("filer-" + std::to_string(i)));
      dafs::ServerConfig cfg = base;
      cfg.service = client_service(i);
      cfg.quorum_group = group;
      cfg.member_id = static_cast<std::uint32_t>(i);
      cfg.repl_retry.jitter_seed = 100 + i;
      members.push_back(std::make_unique<dafs::Server>(f, nodes.back(), cfg));
    }
    for (auto& m : members) m->start();
  }

  ~FilerGroup() {
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      (*it)->stop();
    }
  }

  static std::string client_service(std::size_t i) {
    return "dafs-q" + std::to_string(i);
  }

  std::vector<std::string> services() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < members.size(); ++i) {
      out.push_back(client_service(i));
    }
    return out;
  }

  /// Index of a live leader, -1 if none right now.
  int leader() const {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!members[i]->crashed() && members[i]->role() == Role::kPrimary) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  /// Real-time wait for some live member to hold leadership.
  int wait_leader(int budget_ms = 15'000) const {
    for (int i = 0; i < budget_ms; ++i) {
      const int l = leader();
      if (l >= 0) return l;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return -1;
  }
};

void wait_restart(dafs::Server& server) {
  while (server.crashed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::vector<std::byte> journal_of(dafs::Server& s) {
  return s.store().journal_log().read(0, static_cast<std::size_t>(-1));
}

/// Real-time wait for b's journal to converge byte-identical to a's
/// (re-silvering done). Compares snapshots, so it only returns true once
/// both sides are simultaneously equal.
bool wait_journal_match(dafs::Server& a, dafs::Server& b,
                        int budget_ms = 15'000) {
  for (int i = 0; i < budget_ms; ++i) {
    if (journal_of(a) == journal_of(b)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

/// A quorum mount with test-speed backoffs; `preferred` rotates the initial
/// probe order so clients spread across the group (and tests can force the
/// first probe onto a follower).
dafs::MountSpec quorum_cfg(const FilerGroup& g, std::uint64_t seed, int rank,
                           std::size_t preferred = 0) {
  dafs::RetryPolicy retry;
  // Recovery spends one endpoint pass per kNotLeader probe, so the ride-out
  // budget for an election is roughly services() * attempts paced probes.
  // Sanitizer builds on a loaded core stretch elections well past the
  // default budget — give the mount enough passes to outlast them.
  retry.attempts = 20;
  retry.backoff_ns = 20'000;
  retry.backoff_cap_ns = 2'000'000;
  retry.jitter_seed = seed * 131 + static_cast<std::uint64_t>(rank);
  return dafs::quorum_mount(g.services(), retry, {}, preferred);
}

/// Server knobs every test shares: fast restart grace and a short commit
/// barrier so a partitioned leader demotes requests quickly.
dafs::ServerConfig test_base() {
  dafs::ServerConfig base;
  base.grace_period_ms = 10;
  base.repl_retry.deadline_ns = 50'000'000;  // 50 ms commit-barrier budget
  return base;
}

// ---------------------------------------------------------------------------
// Election: one leader emerges, the term is the fencing epoch
// ---------------------------------------------------------------------------

TEST(Quorum, ElectsSingleLeader) {
  sim::Fabric fabric;
  FilerGroup g(fabric, 3, test_base());
  const int l = g.wait_leader();
  ASSERT_GE(l, 0) << "no leader elected";
  // Let a few heartbeat rounds settle, then: exactly one leader, a positive
  // term shared by everyone, and every follower knows who leads.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  int leaders = 0;
  for (const auto& m : g.members) {
    if (m->role() == Role::kPrimary) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  const int ll = g.leader();
  ASSERT_GE(ll, 0);
  const std::uint64_t term = g.members[ll]->epoch();
  EXPECT_GE(term, 1u) << "a won election bumps the term";
  for (const auto& m : g.members) {
    EXPECT_EQ(m->epoch(), term);
    EXPECT_EQ(m->leader_member(), ll);
  }
  EXPECT_GE(fabric.stats().get("dafs.elections_won"), 1u);
}

// ---------------------------------------------------------------------------
// Client leader discovery: followers hint, the mount follows
// ---------------------------------------------------------------------------

TEST(Quorum, ClientFollowsLeaderHint) {
  sim::Fabric fabric;
  FilerGroup g(fabric, 3, test_base());
  const int l = g.wait_leader();
  ASSERT_GE(l, 0);
  // Wait until every follower has heard the leader's first append (that is
  // where the hint comes from).
  for (const auto& m : g.members) {
    while (m->leader_member() != l) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");

  // Mount with a follower first: the kNotLeader answer must carry the
  // leader's member index and the session must jump straight there.
  const auto follower = static_cast<std::size_t>((l + 1) % 3);
  auto s = std::move(
      dafs::Session::connect(nic, quorum_cfg(g, 1, 0, follower)).value());
  EXPECT_EQ(s->active_service(), FilerGroup::client_service(l));
  EXPECT_GE(fabric.stats().get("dafs.leader_hints_followed"), 1u);
  EXPECT_GE(fabric.stats().get("dafs.not_leader_rejections"), 1u);

  // Work through the leader: a synced write and a counter commit at
  // majority, so every follower's journal converges on the leader's bytes.
  const auto data = pattern(kChunk, 7);
  auto fh = s->open("/hint.dat", dafs::kOpenCreate).value();
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());
  ASSERT_EQ(s->sync(fh), PStatus::kOk);
  ASSERT_TRUE(s->fetch_add("hint.ctr", 3).ok());
  EXPECT_GE(g.members[l]->commit_offset(), 1u);
  for (int i = 0; i < 3; ++i) {
    if (i == l) continue;
    EXPECT_TRUE(wait_journal_match(*g.members[l], *g.members[i]))
        << "follower " << i << " never converged";
  }
  s.reset();
}

TEST(Quorum, FollowerOnlyMountDemotesAndGivesUp) {
  // A mount naming only followers (no endpoint carries the hinted leader's
  // member id) must demote each refusing endpoint to the back of its
  // rotation — not hammer the same one — and surface kNotLeader.
  sim::Fabric fabric;
  FilerGroup g(fabric, 3, test_base());
  const int l = g.wait_leader();
  ASSERT_GE(l, 0);
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");

  dafs::RetryPolicy fast;
  fast.attempts = 2;
  fast.backoff_ns = 1'000;
  fast.backoff_cap_ns = 4'000;
  dafs::MountSpec m;
  for (int i = 0; i < 3; ++i) {
    if (i == l) continue;
    dafs::Endpoint ep{FilerGroup::client_service(i), fast};
    ep.member = static_cast<std::uint32_t>(i);
    m.endpoints.push_back(std::move(ep));
  }
  const std::uint64_t demoted_before =
      fabric.stats().get("dafs.endpoint_demotions");
  auto refused = dafs::Session::connect(nic, m);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error(), PStatus::kNotLeader);
  EXPECT_GT(fabric.stats().get("dafs.endpoint_demotions"), demoted_before);
}

// ---------------------------------------------------------------------------
// Capstone 1: seeded kill-the-leader sweep mid-collective-write
// ---------------------------------------------------------------------------

/// One seed: a 4-rank world writes a durable baseline through the leader,
/// then the crash schedule kills the leader mid-collective-write. The group
/// elects a successor, every rank finishes through it (synced bytes
/// byte-exact, counter mutations exactly-once through the durable dup
/// filter), and the deposed member restarts, rejoins as a follower and
/// re-silvers to a byte-identical journal — all without a manual restart.
void run_kill_world(std::uint64_t seed, std::size_t replicas) {
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr int kRanks = 4;
  constexpr int kAdds = 5;
  constexpr std::uint64_t kDelta = 7;

  sim::Fabric fabric;
  FilerGroup g(fabric, replicas, test_base());
  const int l0 = g.wait_leader();
  ASSERT_GE(l0, 0) << "seed " << seed;

  mpi::WorldConfig wcfg;
  wcfg.nprocs = kRanks;
  wcfg.fabric = &fabric;
  wcfg.name = "quorum-kill";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(
        dafs::Session::connect(
            nic, quorum_cfg(g, seed, c.rank(),
                            static_cast<std::size_t>(c.rank()) % replicas))
            .value());
    auto fa = std::move(File::open(c, "/a.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*session))
                            .value());
    auto fb = std::move(File::open(c, "/b.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*session))
                            .value());
    auto poll_fh = session->open("/a.dat").value();

    // Phase 1 (healthy group): durable baseline. Sync means the journal
    // bytes carrying it were committed at majority, so the baseline must
    // survive the leader's death byte-exact.
    const std::uint64_t off = c.rank() * kChunk;
    const auto da = pattern(kChunk, 1000 + seed * 10 + c.rank());
    ASSERT_TRUE(
        fa->write_at_all(off, da.data(), kChunk, Datatype::byte()).ok());
    ASSERT_EQ(fa->sync(), Err::kOk);
    c.barrier();

    // Arm: kill the leader — and only the leader — a few admitted requests
    // into phase 2, with a restart delay well past the election time.
    if (c.rank() == 0) {
      auto& plan = fabric.faults();
      plan.arm(seed);
      plan.restrict_crash_to_node(g.nodes[static_cast<std::size_t>(l0)]);
      plan.crash_server_after_requests(2 + seed * 3,
                                       /*restart_delay_ms=*/60);
    }
    c.barrier();

    // Phase 2 (crash lands here): collective writes plus counter traffic.
    const auto db = pattern(kChunk, 2000 + seed * 10 + c.rank());
    bool ok = false;
    for (int t = 0; t < 8 && !ok; ++t) {
      ok = fb->write_at_all(off, db.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "collective write across leader death, seed " << seed;
    for (int i = 0; i < kAdds; ++i) {
      auto r = session->fetch_add("qk.ctr", kDelta);
      ASSERT_TRUE(r.ok()) << "fetch_add " << i << ", seed " << seed << ": "
                          << dafs::to_string(r.error());
    }
    c.barrier();

    // Make sure the armed crash actually fired, then wait for a successor.
    if (c.rank() == 0) {
      int guard = 0;
      while (fabric.stats().get("dafs.server_crashes") == 0 && guard++ < 500) {
        (void)session->getattr(poll_fh);
      }
      EXPECT_GE(fabric.stats().get("dafs.server_crashes"), 1u)
          << "seed " << seed;
      EXPECT_GE(g.wait_leader(), 0) << "seed " << seed;
      fabric.faults().clear();
    }
    c.barrier();

    // Phase 3 (on the successor): rewrite /b.dat clean and sync — acked but
    // un-synced phase-2 bytes legally died with the leader — then verify the
    // durable baseline never moved.
    ok = false;
    for (int t = 0; t < 8 && !ok; ++t) {
      ok = fb->write_at_all(off, db.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "clean rewrite, seed " << seed;
    ASSERT_EQ(fb->sync(), Err::kOk);

    std::vector<std::byte> back(kChunk);
    ASSERT_TRUE(
        fa->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), da.data(), kChunk), 0)
        << "synced baseline after leader death, seed " << seed;
    ASSERT_TRUE(
        fb->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), db.data(), kChunk), 0);

    fa->close();
    fb->close();
  });

  // Exactly-once across the change of leadership, checked through a
  // pristine mount (it discovers the live leader on its own).
  {
    const auto node = fabric.add_node("verify");
    Actor actor("verify", &fabric.node(node));
    ActorScope scope(actor);
    via::Nic nic(fabric, node, "vnic");
    auto s = std::move(
        dafs::Session::connect(nic, quorum_cfg(g, seed, 99)).value());
    EXPECT_EQ(s->fetch_add("qk.ctr", 0).value(),
              static_cast<std::uint64_t>(kRanks) * kAdds * kDelta)
        << "seed " << seed;
    for (const char* path : {"/a.dat", "/b.dat"}) {
      auto fh = s->open(path).value();
      const std::uint64_t base =
          std::string_view(path) == "/a.dat" ? 1000 : 2000;
      std::vector<std::byte> all(kRanks * kChunk);
      auto rd = s->pread(fh, 0, all);
      EXPECT_TRUE(rd.ok());
      if (!rd.ok()) continue;
      for (int r = 0; r < kRanks; ++r) {
        const auto expect = pattern(kChunk, base + seed * 10 + r);
        EXPECT_EQ(
            std::memcmp(all.data() + r * kChunk, expect.data(), kChunk), 0)
            << path << " rank " << r << " seed " << seed;
      }
    }
    s.reset();
  }

  // Automatic rejoin + re-silver: the deposed member comes back on its own
  // restart schedule and catches up until its journal is byte-identical to
  // the leader's — no manual intervention anywhere.
  wait_restart(*g.members[static_cast<std::size_t>(l0)]);
  const int lf = g.wait_leader();
  ASSERT_GE(lf, 0) << "seed " << seed;
  EXPECT_TRUE(wait_journal_match(*g.members[static_cast<std::size_t>(lf)],
                                 *g.members[static_cast<std::size_t>(l0)]))
      << "deposed member never re-silvered, seed " << seed;
  EXPECT_GE(fabric.stats().get("dafs.elections_won"), 2u) << "seed " << seed;

  EXPECT_LT(std::chrono::steady_clock::now() - wall_start,
            std::chrono::seconds(90))
      << "seed " << seed;
}

TEST(Quorum, SeededKillLeaderSweep3) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) run_kill_world(seed, 3);
}

TEST(Quorum, SeededKillLeaderSweep5) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) run_kill_world(seed, 5);
}

// ---------------------------------------------------------------------------
// Capstone 2: seeded partition-the-leader sweep (term-based fencing)
// ---------------------------------------------------------------------------

/// One seed: sever both directions between the leader and every other
/// member mid-collective-write (clients can still reach it — the dangerous
/// case). The stranded leader's lease expires and it steps down, so it can
/// never acknowledge a write the majority side does not have; the rest
/// elect a successor and every rank finishes there. The partition heals on
/// its own and the ex-leader truncates its divergent suffix and re-silvers
/// back to byte-identical journal state.
void run_partition_world(std::uint64_t seed, std::size_t replicas) {
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr int kRanks = 4;
  constexpr int kAdds = 5;
  constexpr std::uint64_t kDelta = 7;

  sim::Fabric fabric;
  FilerGroup g(fabric, replicas, test_base());
  const int l0 = g.wait_leader();
  ASSERT_GE(l0, 0) << "seed " << seed;

  mpi::WorldConfig wcfg;
  wcfg.nprocs = kRanks;
  wcfg.fabric = &fabric;
  wcfg.name = "quorum-part";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(
        dafs::Session::connect(
            nic, quorum_cfg(g, seed, c.rank(),
                            static_cast<std::size_t>(c.rank()) % replicas))
            .value());
    auto fa = std::move(File::open(c, "/a.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*session))
                            .value());

    // Durable baseline through the healthy group.
    const std::uint64_t off = c.rank() * kChunk;
    const auto da = pattern(kChunk, 3000 + seed * 10 + c.rank());
    ASSERT_TRUE(
        fa->write_at_all(off, da.data(), kChunk, Datatype::byte()).ok());
    ASSERT_EQ(fa->sync(), Err::kOk);
    c.barrier();

    // Strand the leader: sever it from every other member (both
    // directions), healing automatically after 400 ms. Client links stay
    // up, so the stranded leader keeps *receiving* requests — term fencing
    // is what must stop it acknowledging them.
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < replicas; ++i) {
        if (static_cast<int>(i) == l0) continue;
        fabric.faults().partition_nodes(
            g.nodes[static_cast<std::size_t>(l0)], g.nodes[i],
            /*heal_after_ms=*/400);
      }
    }
    c.barrier();

    // Mid-partition collective writes plus counter traffic: requests that
    // reached the stranded leader come back kNotLeader (commit barrier
    // cannot reach majority), and recovery routes everything to the
    // successor.
    const auto db = pattern(kChunk, 4000 + seed * 10 + c.rank());
    bool ok = false;
    for (int t = 0; t < 10 && !ok; ++t) {
      ok = fa->write_at_all(off + kRanks * kChunk, db.data(), kChunk,
                            Datatype::byte())
               .ok();
    }
    ASSERT_TRUE(ok) << "collective write across partition, seed " << seed;
    for (int i = 0; i < kAdds; ++i) {
      auto r = session->fetch_add("qp.ctr", kDelta);
      ASSERT_TRUE(r.ok()) << "fetch_add " << i << ", seed " << seed << ": "
                          << dafs::to_string(r.error());
    }
    ASSERT_EQ(fa->sync(), Err::kOk);
    c.barrier();

    // The durable baseline never moved.
    std::vector<std::byte> back(kChunk);
    ASSERT_TRUE(
        fa->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), da.data(), kChunk), 0)
        << "synced baseline across partition, seed " << seed;

    fa->close();
  });

  // The stranded leader must have stepped down (lease expiry beats the
  // partition healing), and a successor must have taken over.
  EXPECT_GE(fabric.stats().get("dafs.leader_lease_expirations"), 1u)
      << "seed " << seed;
  EXPECT_GE(fabric.stats().get("dafs.leader_stepdowns"), 1u)
      << "seed " << seed;

  // Exactly-once through a pristine mount.
  {
    const auto node = fabric.add_node("verify");
    Actor actor("verify", &fabric.node(node));
    ActorScope scope(actor);
    via::Nic nic(fabric, node, "vnic");
    auto s = std::move(
        dafs::Session::connect(nic, quorum_cfg(g, seed, 99)).value());
    EXPECT_EQ(s->fetch_add("qp.ctr", 0).value(),
              static_cast<std::uint64_t>(kRanks) * kAdds * kDelta)
        << "seed " << seed;
    auto fh = s->open("/a.dat").value();
    std::vector<std::byte> all(2 * kRanks * kChunk);
    auto rd = s->pread(fh, 0, all);
    EXPECT_TRUE(rd.ok());
    if (rd.ok()) {
      for (int r = 0; r < kRanks; ++r) {
        const auto base = pattern(kChunk, 3000 + seed * 10 + r);
        const auto mid = pattern(kChunk, 4000 + seed * 10 + r);
        EXPECT_EQ(
            std::memcmp(all.data() + r * kChunk, base.data(), kChunk), 0)
            << "baseline rank " << r << " seed " << seed;
        EXPECT_EQ(std::memcmp(all.data() + (kRanks + r) * kChunk, mid.data(),
                              kChunk),
                  0)
            << "mid-partition rank " << r << " seed " << seed;
      }
    }
    s.reset();
  }

  // Healed: the ex-leader rejoins as a follower, truncates whatever suffix
  // it journaled but never committed, and catches up to byte-identical
  // journal state.
  const int lf = g.wait_leader();
  ASSERT_GE(lf, 0) << "seed " << seed;
  EXPECT_TRUE(wait_journal_match(*g.members[static_cast<std::size_t>(lf)],
                                 *g.members[static_cast<std::size_t>(l0)]))
      << "ex-leader never re-silvered, seed " << seed;
  EXPECT_TRUE(g.members[static_cast<std::size_t>(l0)]->resilver_bytes() > 0 ||
              fabric.stats().get("dafs.resilver_truncated_bytes") > 0)
      << "no re-silver happened at all, seed " << seed;

  EXPECT_LT(std::chrono::steady_clock::now() - wall_start,
            std::chrono::seconds(90))
      << "seed " << seed;
}

TEST(Quorum, SeededPartitionLeaderSweep3) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_partition_world(seed, 3);
  }
}

TEST(Quorum, SeededPartitionLeaderSweep5) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_partition_world(seed, 5);
  }
}

}  // namespace
