// Property/stress tests across the stack: randomized traffic shapes that a
// scripted unit test would not reach.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "sim/rng.hpp"
#include "via/vi.hpp"

namespace {

using namespace std::chrono_literals;
using sim::Actor;
using sim::ActorScope;

// ---------------------------------------------------------------------------
// VIA: randomized message streams keep FIFO order and integrity
// ---------------------------------------------------------------------------

TEST(ViaStress, RandomSizedStreamPreservesOrderAndBytes) {
  sim::Fabric fabric;
  const auto na = fabric.add_node("a");
  const auto nb = fabric.add_node("b");
  via::Nic nic_a(fabric, na, "nicA");
  via::Nic nic_b(fabric, nb, "nicB");
  Actor actor_a("a", &fabric.node(na));
  Actor actor_b("b", &fabric.node(nb));
  via::Vi vi_a(nic_a, {});
  via::Vi vi_b(nic_b, {});
  via::Listener lis(nic_b, "svc");
  std::thread acc([&] {
    ActorScope scope(actor_b);
    ASSERT_EQ(lis.accept(vi_b, 5000ms), via::Status::kSuccess);
  });
  {
    ActorScope scope(actor_a);
    ASSERT_EQ(nic_a.connect(vi_a, "svc", 5000ms), via::Status::kSuccess);
  }
  acc.join();

  constexpr int kMsgs = 200;
  constexpr std::size_t kMaxSize = 40'000;
  sim::Rng size_rng(123);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < kMsgs; ++i) {
    sizes.push_back(1 + size_rng.below(kMaxSize));
  }

  // Receiver thread: pre-posts a window of receives and keeps replenishing.
  std::atomic<int> bad{0};
  std::thread receiver([&] {
    ActorScope scope(actor_b);
    const auto tag = nic_b.create_ptag();
    constexpr int kWindow = 16;
    std::vector<std::vector<std::byte>> bufs(kWindow,
                                             std::vector<std::byte>(kMaxSize));
    std::vector<via::MemHandle> handles;
    std::vector<via::Descriptor> descs(kWindow);
    for (int i = 0; i < kWindow; ++i) {
      handles.push_back(
          nic_b.register_memory(bufs[i].data(), kMaxSize, tag, {}));
      descs[i].segs = {via::DataSegment{
          bufs[i].data(), handles[i], static_cast<std::uint32_t>(kMaxSize)}};
      ASSERT_EQ(vi_b.post_recv(descs[i]), via::Status::kSuccess);
    }
    sim::Rng check(999);
    sim::Time prev = 0;
    for (int m = 0; m < kMsgs; ++m) {
      via::Descriptor* d = nullptr;
      ASSERT_EQ(vi_b.recv_wait(d, 10'000ms), via::Status::kSuccess);
      if (d->length != sizes[static_cast<std::size_t>(m)]) ++bad;
      // Message m is filled with byte (m & 0xff) by the sender.
      const auto* base = d->segs[0].addr;
      for (std::uint32_t i = 0; i < d->length; i += 997) {
        if (base[i] != static_cast<std::byte>(m & 0xff)) {
          ++bad;
          break;
        }
      }
      if (d->done_at < prev) ++bad;  // FIFO in virtual time
      prev = d->done_at;
      (void)check;
      ASSERT_EQ(vi_b.post_recv(*d), via::Status::kSuccess);
    }
  });

  // Sender: stream all messages as fast as flow control allows.
  {
    ActorScope scope(actor_a);
    const auto tag = nic_a.create_ptag();
    std::vector<std::byte> buf(kMaxSize);
    const auto h = nic_a.register_memory(buf.data(), kMaxSize, tag, {});
    for (int m = 0; m < kMsgs; ++m) {
      std::fill(buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(
                                  sizes[static_cast<std::size_t>(m)]),
                static_cast<std::byte>(m & 0xff));
      via::Descriptor s;
      s.segs = {via::DataSegment{
          buf.data(), h,
          static_cast<std::uint32_t>(sizes[static_cast<std::size_t>(m)])}};
      ASSERT_EQ(vi_a.post_send(s), via::Status::kSuccess);
      via::Descriptor* done = nullptr;
      ASSERT_EQ(vi_a.send_wait(done, 10'000ms), via::Status::kSuccess);
      ASSERT_EQ(done->status, via::DescStatus::kSuccess);
    }
  }
  receiver.join();
  EXPECT_EQ(bad.load(), 0);
}

// ---------------------------------------------------------------------------
// DAFS server: malformed traffic must not wedge or crash the filer
// ---------------------------------------------------------------------------

TEST(DafsRobustness, GarbageRequestsGetErrorsNotHangs) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  const auto node = fabric.add_node("attacker");
  Actor actor("attacker", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");

  // Raw VI straight to the DAFS service, bypassing the client library.
  via::Vi vi(nic, {});
  const auto tag = nic.create_ptag();
  std::vector<std::byte> rbuf(dafs::kMsgBufSize);
  const auto rh = nic.register_memory(rbuf.data(), rbuf.size(), tag, {});
  via::Descriptor recv;
  recv.segs = {via::DataSegment{rbuf.data(), rh,
                                static_cast<std::uint32_t>(rbuf.size())}};
  via::Status st = via::Status::kNoMatchingListener;
  for (int attempt = 0; attempt < 200; ++attempt) {
    st = nic.connect(vi, "dafs", 2000ms);
    if (st != via::Status::kNoMatchingListener) break;
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(st, via::Status::kSuccess);
  ASSERT_EQ(vi.post_recv(recv), via::Status::kSuccess);

  // A header full of nonsense: unknown proc, absurd lengths, bad session.
  std::vector<std::byte> sbuf(dafs::kMsgBufSize);
  const auto sh = nic.register_memory(sbuf.data(), sbuf.size(), tag, {});
  dafs::MsgView msg(sbuf.data(), sbuf.size());
  msg.header() = dafs::MsgHeader{};
  msg.header().proc = static_cast<dafs::Proc>(250);
  msg.header().session_id = 0xdeadbeef;
  msg.header().name_len = 0;
  msg.header().data_len = 0;
  via::Descriptor send;
  send.segs = {via::DataSegment{
      sbuf.data(), sh, static_cast<std::uint32_t>(msg.wire_size())}};
  ASSERT_EQ(vi.post_send(send), via::Status::kSuccess);
  via::Descriptor* sd = nullptr;
  ASSERT_EQ(vi.send_wait(sd, 5000ms), via::Status::kSuccess);

  // The server must answer with an error status, not wedge.
  via::Descriptor* rd = nullptr;
  ASSERT_EQ(vi.recv_wait(rd, 5000ms), via::Status::kSuccess);
  dafs::MsgView resp(rbuf.data(), rbuf.size());
  EXPECT_NE(resp.header().status, dafs::PStatus::kOk);

  // And a well-behaved session still works afterwards.
  auto s = std::move(dafs::Session::connect(nic).value());
  EXPECT_TRUE(s->open("/ok", dafs::kOpenCreate).ok());
  s.reset();
  vi.disconnect();
}

// ---------------------------------------------------------------------------
// DAFS: randomized op soup against a reference model
// ---------------------------------------------------------------------------

TEST(DafsStress, RandomOpsMatchReferenceModel) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());
  auto fh = s->open("/soup", dafs::kOpenCreate).value();

  std::vector<std::byte> model;
  sim::Rng rng(2026);
  for (int op = 0; op < 120; ++op) {
    switch (rng.below(4)) {
      case 0: {  // write random extent (inline or direct by size)
        const std::uint64_t off = rng.below(200'000);
        const std::size_t len = 1 + rng.below(30'000);
        std::vector<std::byte> data(len);
        for (auto& b : data) b = static_cast<std::byte>(rng.next() & 0xff);
        ASSERT_TRUE(s->pwrite(fh, off, data).ok());
        if (model.size() < off + len) model.resize(off + len);
        std::memcpy(model.data() + off, data.data(), len);
        break;
      }
      case 1: {  // read random extent, compare
        if (model.empty()) break;
        const std::uint64_t off = rng.below(model.size());
        const std::size_t len = 1 + rng.below(30'000);
        std::vector<std::byte> got(len, std::byte{0xAA});
        auto r = s->pread(fh, off, got);
        ASSERT_TRUE(r.ok());
        const std::uint64_t expect =
            off >= model.size()
                ? 0
                : std::min<std::uint64_t>(len, model.size() - off);
        ASSERT_EQ(r.value(), expect);
        EXPECT_EQ(std::memcmp(got.data(), model.data() + off, expect), 0)
            << "op " << op;
        break;
      }
      case 2: {  // truncate/extend
        const std::uint64_t size = rng.below(250'000);
        ASSERT_EQ(s->set_size(fh, size), dafs::PStatus::kOk);
        const std::size_t old = model.size();
        model.resize(size);
        if (size > old) {
          // growth exposes zeros (resize already zero-fills)
        }
        break;
      }
      case 3: {  // verify attributes
        EXPECT_EQ(s->getattr(fh).value().size, model.size());
        break;
      }
    }
  }
  s.reset();
}

// ---------------------------------------------------------------------------
// fstore: concurrent writers to disjoint files
// ---------------------------------------------------------------------------

TEST(FstoreStress, ParallelWritersToDistinctFiles) {
  fstore::FileStore fs;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto f = fs.create(fstore::kRootIno, "f" + std::to_string(t), true);
      ASSERT_TRUE(f.ok());
      sim::Rng rng(static_cast<std::uint64_t>(t) + 1);
      std::vector<std::byte> model;
      for (int op = 0; op < 150; ++op) {
        const std::uint64_t off = rng.below(50'000);
        const std::size_t len = 1 + rng.below(5'000);
        std::vector<std::byte> data(len);
        for (auto& b : data) b = static_cast<std::byte>(rng.next() & 0xff);
        if (!fs.pwrite(f.value(), off, data).ok()) ++bad;
        if (model.size() < off + len) model.resize(off + len);
        std::memcpy(model.data() + off, data.data(), len);
      }
      std::vector<std::byte> back(model.size());
      auto r = fs.pread(f.value(), 0, back);
      if (!r.ok() || r.value() != model.size() ||
          std::memcmp(back.data(), model.data(), model.size()) != 0) {
        ++bad;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

// ---------------------------------------------------------------------------
// MPI-IO: noncontiguous *memory* types (buftype), not just file views
// ---------------------------------------------------------------------------

TEST(MpiioBuftype, StridedMemoryGatherAndScatter) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  mpi::WorldConfig cfg;
  cfg.nprocs = 1;
  cfg.fabric = &fabric;
  mpi::World world(cfg);
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(0), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    auto f = std::move(
        mpiio::File::open(c, "/mem.dat",
                          mpiio::kModeCreate | mpiio::kModeRdwr,
                          mpiio::Info{}, mpiio::dafs_driver(*session))
            .value());
    // Memory: every other int32 of a 64-int array (gather on write).
    auto stride2 = mpi::Datatype::vector(32, 1, 2, mpi::Datatype::int32());
    std::vector<std::int32_t> mem(64);
    for (int i = 0; i < 64; ++i) mem[static_cast<std::size_t>(i)] = i * 3;
    ASSERT_TRUE(f->write_at(0, mem.data(), 1, stride2).ok());
    // On disk the gathered values are contiguous.
    std::vector<std::int32_t> disk(32, -1);
    ASSERT_TRUE(f->read_at(0, disk.data(), 32, mpi::Datatype::int32()).ok());
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(disk[static_cast<std::size_t>(i)], i * 2 * 3) << i;
    }
    // Scatter on read: read back into the odd slots via an offset view of
    // the same memory type.
    std::vector<std::int32_t> back(64, -1);
    ASSERT_TRUE(f->read_at(0, back.data(), 1, stride2).ok());
    for (int i = 0; i < 64; ++i) {
      if (i % 2 == 0) {
        EXPECT_EQ(back[static_cast<std::size_t>(i)], i * 3) << i;
      } else {
        EXPECT_EQ(back[static_cast<std::size_t>(i)], -1) << i;
      }
    }
    f->close();
  });
}

TEST(MpiioBuftype, StridedMemoryMeetsStridedViewInCollective) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  mpi::WorldConfig cfg;
  cfg.nprocs = 4;
  cfg.fabric = &fabric;
  mpi::World world(cfg);
  world.run([&](mpi::Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    auto f = std::move(
        mpiio::File::open(c, "/both.dat",
                          mpiio::kModeCreate | mpiio::kModeRdwr,
                          mpiio::Info{}, mpiio::dafs_driver(*session))
            .value());
    // File view: block-cyclic by rank (1 KiB blocks).
    constexpr std::uint32_t kBlock = 1024;
    const std::array<std::uint32_t, 1> sizes = {kBlock * 4};
    const std::array<std::uint32_t, 1> subsizes = {kBlock};
    const std::array<std::uint32_t, 1> starts = {
        static_cast<std::uint32_t>(c.rank()) * kBlock};
    auto ft = mpi::Datatype::subarray(sizes, subsizes, starts,
                                      mpi::Datatype::byte());
    ASSERT_EQ(f->set_view(0, mpi::Datatype::byte(), ft), mpiio::Err::kOk);
    // Memory: 512-byte pieces every 1024 bytes (half the buffer is gaps).
    auto mt = mpi::Datatype::resized(
        mpi::Datatype::hvector(1, 512, 1024, mpi::Datatype::byte()), 0, 1024);
    std::vector<std::byte> mem(16 * 1024, std::byte(c.rank() + 1));
    for (std::size_t i = 0; i < mem.size(); i += 1024) {
      // mark the gap region differently; it must never reach the file
      std::fill(mem.begin() + static_cast<std::ptrdiff_t>(i) + 512,
                mem.begin() + static_cast<std::ptrdiff_t>(i) + 1024,
                std::byte{0xEE});
    }
    ASSERT_TRUE(f->write_at_all(0, mem.data(), 16, mt).ok());
    c.barrier();
    // Verify: the file contains only rank-marker bytes, never 0xEE.
    if (c.rank() == 0) {
      auto raw = session->open("/both.dat").value();
      const auto size = session->getattr(raw).value().size;
      EXPECT_EQ(size, 4u * 16 * 512);  // 4 ranks x 16 pieces x 512 B
      std::vector<std::byte> all(size);
      ASSERT_TRUE(session->pread(raw, 0, all).ok());
      for (std::size_t i = 0; i < all.size(); ++i) {
        ASSERT_NE(all[i], std::byte{0xEE}) << i;
        ASSERT_NE(all[i], std::byte{0}) << i;
      }
    }
    f->close();
  });
}

}  // namespace
