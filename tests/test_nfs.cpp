#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "nfs/client.hpp"
#include "nfs/server.hpp"
#include "sim/rng.hpp"

namespace {

using nfs::Client;
using nfs::ClientConfig;
using nfs::kOpenCreate;
using nfs::kOpenExcl;
using nfs::kOpenTrunc;
using nfs::PStatus;
using nfs::Server;
using nfs::ServerConfig;
using nfs::TcpListener;
using nfs::TcpStream;
using sim::Actor;
using sim::ActorScope;

using namespace std::chrono_literals;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

// ---------------------------------------------------------------------------
// TCP stream
// ---------------------------------------------------------------------------

class TcpTest : public ::testing::Test {
 protected:
  TcpTest()
      : na_(fabric_.add_node("a")),
        nb_(fabric_.add_node("b")),
        actor_a_("a", &fabric_.node(na_)),
        actor_b_("b", &fabric_.node(nb_)) {}

  sim::Fabric fabric_;
  sim::NodeId na_, nb_;
  Actor actor_a_, actor_b_;
};

TEST_F(TcpTest, ConnectSendReceive) {
  TcpListener lis(fabric_, nb_, "svc");
  std::unique_ptr<TcpStream> server_side;
  std::thread srv([&] {
    ActorScope scope(actor_b_);
    server_side = lis.accept(2000ms);
  });
  ActorScope scope(actor_a_);
  auto client = TcpStream::connect(fabric_, na_, "svc", 2000ms);
  srv.join();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server_side, nullptr);

  auto data = pattern(100'000, 1);
  ASSERT_TRUE(client->send(data));
  std::vector<std::byte> back(100'000);
  {
    ActorScope scope_b(actor_b_);
    ASSERT_TRUE(server_side->recv_exact(back));
  }
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
}

TEST_F(TcpTest, ReceiveSpansMultipleSends) {
  TcpListener lis(fabric_, nb_, "svc");
  std::unique_ptr<TcpStream> server_side;
  std::thread srv([&] {
    ActorScope scope(actor_b_);
    server_side = lis.accept(2000ms);
  });
  ActorScope scope(actor_a_);
  auto client = TcpStream::connect(fabric_, na_, "svc", 2000ms);
  srv.join();
  ASSERT_NE(client, nullptr);

  std::string p1 = "hello ", p2 = "stream ", p3 = "world";
  auto as_bytes = [](const std::string& s) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(s.data()), s.size());
  };
  ASSERT_TRUE(client->send(as_bytes(p1)));
  ASSERT_TRUE(client->send(as_bytes(p2)));
  ASSERT_TRUE(client->send(as_bytes(p3)));
  std::vector<std::byte> all(p1.size() + p2.size() + p3.size());
  ActorScope scope_b(actor_b_);
  ASSERT_TRUE(server_side->recv_exact(all));
  EXPECT_EQ(std::string(reinterpret_cast<char*>(all.data()), all.size()),
            "hello stream world");
}

TEST_F(TcpTest, CloseUnblocksReceiver) {
  TcpListener lis(fabric_, nb_, "svc");
  std::unique_ptr<TcpStream> server_side;
  std::thread srv([&] {
    ActorScope scope(actor_b_);
    server_side = lis.accept(2000ms);
  });
  ActorScope scope(actor_a_);
  auto client = TcpStream::connect(fabric_, na_, "svc", 2000ms);
  srv.join();
  ASSERT_NE(client, nullptr);
  std::thread closer([&] { client->close(); });
  std::vector<std::byte> buf(10);
  ActorScope scope_b(actor_b_);
  EXPECT_FALSE(server_side->recv_exact(buf));
  closer.join();
  EXPECT_FALSE(server_side->send(buf));
}

TEST_F(TcpTest, ConnectToMissingServiceFails) {
  ActorScope scope(actor_a_);
  EXPECT_EQ(TcpStream::connect(fabric_, na_, "nothing", 100ms), nullptr);
}

TEST_F(TcpTest, KernelCostsChargedOnBothSides) {
  TcpListener lis(fabric_, nb_, "svc");
  std::unique_ptr<TcpStream> server_side;
  std::thread srv([&] {
    ActorScope scope(actor_b_);
    server_side = lis.accept(2000ms);
  });
  ActorScope scope(actor_a_);
  auto client = TcpStream::connect(fabric_, na_, "svc", 2000ms);
  srv.join();

  auto data = pattern(1 << 20, 2);
  ASSERT_TRUE(client->send(data));
  // Sender: one syscall, a full user->kernel copy, per-segment stack work.
  const auto& busy_a = actor_a_.busy();
  EXPECT_GE(busy_a[sim::CostKind::kCopy], fabric_.cost().copy_time(1 << 20));
  EXPECT_GT(busy_a[sim::CostKind::kKernel], fabric_.cost().syscall);

  std::vector<std::byte> back(1 << 20);
  {
    ActorScope scope_b(actor_b_);
    ASSERT_TRUE(server_side->recv_exact(back));
  }
  const auto& busy_b = actor_b_.busy();
  EXPECT_GE(busy_b[sim::CostKind::kCopy], fabric_.cost().copy_time(1 << 20));
  EXPECT_GT(busy_b[sim::CostKind::kInterrupt], 0u);
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
}

// ---------------------------------------------------------------------------
// NFS client/server
// ---------------------------------------------------------------------------

class NfsTest : public ::testing::Test {
 protected:
  NfsTest()
      : server_node_(fabric_.add_node("nfs-server")),
        client_node_(fabric_.add_node("client")),
        server_(fabric_, server_node_, ServerConfig{}),
        client_actor_("client", &fabric_.node(client_node_)) {
    server_.start();
  }

  std::unique_ptr<Client> Connect(ClientConfig cfg = {}) {
    ActorScope scope(client_actor_);
    auto r = Client::connect(fabric_, client_node_, cfg);
    EXPECT_TRUE(r.ok());
    return r.ok() ? std::move(r.value()) : nullptr;
  }

  sim::Fabric fabric_;
  sim::NodeId server_node_, client_node_;
  Server server_;
  Actor client_actor_;
};

TEST_F(NfsTest, OpenCreateReadWrite) {
  auto c = Connect();
  ASSERT_NE(c, nullptr);
  ActorScope scope(client_actor_);
  auto ino = c->open("/file", kOpenCreate);
  ASSERT_TRUE(ino.ok());
  auto data = pattern(200'000, 3);
  auto w = c->pwrite(ino.value(), 0, data);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), data.size());
  std::vector<std::byte> back(data.size());
  auto r = c->pread(ino.value(), 0, back);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), data.size());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
  EXPECT_EQ(c->getattr(ino.value()).value().size, data.size());
}

TEST_F(NfsTest, NamespaceOperations) {
  auto c = Connect();
  ActorScope scope(client_actor_);
  ASSERT_EQ(c->mkdir("/d"), PStatus::kOk);
  ASSERT_TRUE(c->open("/d/x", kOpenCreate).ok());
  ASSERT_TRUE(c->open("/d/y", kOpenCreate).ok());
  auto ls = c->readdir("/d");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ls.value().size(), 2u);
  ASSERT_EQ(c->rename("/d/x", "/d/z"), PStatus::kOk);
  EXPECT_EQ(c->open("/d/x").error(), PStatus::kNoEnt);
  ASSERT_EQ(c->remove("/d/y"), PStatus::kOk);
  ASSERT_EQ(c->remove("/d/z"), PStatus::kOk);
  ASSERT_EQ(c->rmdir("/d"), PStatus::kOk);
  EXPECT_EQ(c->open("/d").error(), PStatus::kNoEnt);
}

TEST_F(NfsTest, ExclusiveCreateAndTrunc) {
  auto c = Connect();
  ActorScope scope(client_actor_);
  ASSERT_TRUE(c->open("/f", kOpenCreate | kOpenExcl).ok());
  EXPECT_EQ(c->open("/f", kOpenCreate | kOpenExcl).error(), PStatus::kExists);
  auto data = pattern(1000, 4);
  auto ino = c->open("/f");
  ASSERT_TRUE(c->pwrite(ino.value(), 0, data).ok());
  ASSERT_TRUE(c->open("/f", kOpenTrunc).ok());
  EXPECT_EQ(c->getattr(ino.value()).value().size, 0u);
}

TEST_F(NfsTest, LargeTransferChunksByWsize) {
  auto c = Connect();
  ActorScope scope(client_actor_);
  auto ino = c->open("/big", kOpenCreate);
  auto data = pattern(1 << 20, 5);
  ASSERT_TRUE(c->pwrite(ino.value(), 0, data).ok());
  // 1 MiB at 32 KiB per RPC = 32 write requests.
  EXPECT_EQ(fabric_.stats().get("nfs.requests"),
            1u /*open*/ + 32u /*writes*/);
  std::vector<std::byte> back(1 << 20);
  ASSERT_TRUE(c->pread(ino.value(), 0, back).ok());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), back.size()), 0);
}

TEST_F(NfsTest, TwoClientsShareNamespace) {
  auto c1 = Connect();
  auto c2 = Connect();
  ActorScope scope(client_actor_);
  auto ino = c1->open("/shared", kOpenCreate);
  ASSERT_TRUE(ino.ok());
  auto data = pattern(10'000, 6);
  ASSERT_TRUE(c1->pwrite(ino.value(), 0, data).ok());
  auto ino2 = c2->open("/shared");
  ASSERT_TRUE(ino2.ok());
  EXPECT_EQ(ino2.value(), ino.value());
  std::vector<std::byte> back(10'000);
  ASSERT_TRUE(c2->pread(ino2.value(), 0, back).ok());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), back.size()), 0);
}

TEST_F(NfsTest, ReadShortAtEof) {
  auto c = Connect();
  ActorScope scope(client_actor_);
  auto ino = c->open("/s", kOpenCreate);
  auto data = pattern(100, 7);
  ASSERT_TRUE(c->pwrite(ino.value(), 0, data).ok());
  std::vector<std::byte> back(1000);
  auto r = c->pread(ino.value(), 0, back);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 100u);
}


TEST_F(NfsTest, AttributeCacheServesStaleSizeUntilTimeout) {
  // Classic NFS weak consistency: with the attribute cache on, another
  // client's growth of the file is invisible until the cache entry expires
  // (virtual time). DAFS sessions never have this problem.
  ClientConfig cached;
  cached.attr_cache_us = 50'000;  // 50 ms virtual
  auto observer = Connect(cached);
  auto writer = Connect();  // no cache
  ActorScope scope(client_actor_);
  auto ino = writer->open("/stale", kOpenCreate).value();
  auto data = pattern(1000, 8);
  ASSERT_TRUE(writer->pwrite(ino, 0, data).ok());

  auto ino2 = observer->open("/stale").value();
  EXPECT_EQ(observer->getattr(ino2).value().size, 1000u);  // primes cache

  // Writer grows the file; observer still sees the cached size.
  ASSERT_TRUE(writer->pwrite(ino, 1000, data).ok());
  EXPECT_EQ(observer->getattr(ino2).value().size, 1000u);

  // After the cache lifetime passes (virtual), the fresh size appears.
  client_actor_.advance(60'000 * 1'000);  // 60 ms
  EXPECT_EQ(observer->getattr(ino2).value().size, 2000u);
}

TEST_F(NfsTest, AttributeCacheInvalidatedByLocalWrites) {
  ClientConfig cached;
  cached.attr_cache_us = 1'000'000;  // very long
  auto c = Connect(cached);
  ActorScope scope(client_actor_);
  auto ino = c->open("/own", kOpenCreate).value();
  auto data = pattern(500, 9);
  ASSERT_TRUE(c->pwrite(ino, 0, data).ok());
  EXPECT_EQ(c->getattr(ino).value().size, 500u);
  // Our own writes must be visible immediately despite the cache.
  ASSERT_TRUE(c->pwrite(ino, 500, data).ok());
  EXPECT_EQ(c->getattr(ino).value().size, 1000u);
  ASSERT_EQ(c->set_size(ino, 100), PStatus::kOk);
  EXPECT_EQ(c->getattr(ino).value().size, 100u);
}

}  // namespace
