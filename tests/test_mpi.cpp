#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <numeric>
#include <vector>

#include "mpi/runtime.hpp"
#include "sim/rng.hpp"

namespace {

using mpi::Comm;
using mpi::Datatype;
using mpi::kAnySource;
using mpi::kAnyTag;
using mpi::Op;
using mpi::RecvStatus;
using mpi::World;
using mpi::WorldConfig;

WorldConfig config(int n) {
  WorldConfig cfg;
  cfg.nprocs = n;
  return cfg;
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

TEST(MpiP2p, EagerSendRecvDeliversData) {
  World w(config(2));
  w.run([](Comm& c) {
    std::vector<std::int32_t> buf(128);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 100);
      c.send(buf.data(), buf.size(), Datatype::int32(), 1, 7);
    } else {
      const RecvStatus st =
          c.recv(buf.data(), buf.size(), Datatype::int32(), 0, 7);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 128u * 4);
      EXPECT_EQ(buf[0], 100);
      EXPECT_EQ(buf[127], 227);
    }
  });
}

TEST(MpiP2p, RendezvousLargeMessage) {
  World w(config(2));
  w.run([&w](Comm& c) {
    std::vector<std::byte> buf(1 << 20);
    if (c.rank() == 0) {
      sim::Rng rng(5);
      for (auto& b : buf) b = static_cast<std::byte>(rng.next() & 0xff);
      c.send(buf.data(), buf.size(), Datatype::byte(), 1, 0);
      // Big contiguous payload must go rendezvous + RDMA, not eager.
      EXPECT_GT(w.fabric().stats().get("mpi.rndv_bytes"), 0u);
    } else {
      c.recv(buf.data(), buf.size(), Datatype::byte(), 0, 0);
      sim::Rng rng(5);
      for (std::size_t i = 0; i < buf.size(); i += 4097) {
        EXPECT_EQ(buf[i], static_cast<std::byte>(rng.next() & 0xff));
        rng = sim::Rng(5);  // reset: recompute from scratch
        for (std::size_t j = 0; j <= i; ++j) {
          if (j == i) break;
          rng.next();
        }
        break;  // spot-check only the first byte deterministically
      }
    }
  });
}

TEST(MpiP2p, RendezvousIntegrityFullCompare) {
  World w(config(2));
  std::vector<std::byte> sent(300'000);
  sim::Rng rng(9);
  for (auto& b : sent) b = static_cast<std::byte>(rng.next() & 0xff);
  w.run([&sent](Comm& c) {
    if (c.rank() == 0) {
      c.send(sent.data(), sent.size(), Datatype::byte(), 1, 3);
    } else {
      std::vector<std::byte> got(sent.size());
      c.recv(got.data(), got.size(), Datatype::byte(), 0, 3);
      EXPECT_EQ(std::memcmp(got.data(), sent.data(), sent.size()), 0);
    }
  });
}

TEST(MpiP2p, TagsDisambiguateMessages) {
  World w(config(2));
  w.run([](Comm& c) {
    int a = 1, b = 2;
    if (c.rank() == 0) {
      c.send(&a, sizeof(a), Datatype::byte(), 1, 10);
      c.send(&b, sizeof(b), Datatype::byte(), 1, 20);
    } else {
      int x = 0, y = 0;
      // Receive in reverse tag order: matching is by tag, not arrival.
      c.recv(&y, sizeof(y), Datatype::byte(), 0, 20);
      c.recv(&x, sizeof(x), Datatype::byte(), 0, 10);
      EXPECT_EQ(x, 1);
      EXPECT_EQ(y, 2);
    }
  });
}

TEST(MpiP2p, AnySourceAnyTagMatches) {
  World w(config(3));
  w.run([](Comm& c) {
    if (c.rank() != 0) {
      const int v = c.rank() * 11;
      c.send(&v, sizeof(v), Datatype::byte(), 0, c.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        const RecvStatus st =
            c.recv(&v, sizeof(v), Datatype::byte(), kAnySource, kAnyTag);
        EXPECT_EQ(v, st.source * 11);
        EXPECT_EQ(st.tag, st.source);
        sum += v;
      }
      EXPECT_EQ(sum, 11 + 22);
    }
  });
}

TEST(MpiP2p, NoncontiguousDatatypeRoundTrip) {
  World w(config(2));
  w.run([](Comm& c) {
    // Send every other int from a 32-element array.
    auto stride2 = Datatype::vector(16, 1, 2, Datatype::int32());
    std::vector<std::int32_t> src(32), dst(32, -1);
    std::iota(src.begin(), src.end(), 0);
    if (c.rank() == 0) {
      c.send(src.data(), 1, stride2, 1, 0);
    } else {
      c.recv(dst.data(), 1, stride2, 0, 0);
      for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(dst[i], i % 2 == 0 ? i : -1) << i;
      }
    }
  });
}

TEST(MpiP2p, SelfSendRecv) {
  World w(config(1));
  w.run([](Comm& c) {
    int v = 42;
    c.send(&v, sizeof(v), Datatype::byte(), 0, 5);
    int got = 0;
    c.recv(&got, sizeof(got), Datatype::byte(), 0, 5);
    EXPECT_EQ(got, 42);
  });
}

TEST(MpiP2p, SendrecvExchangesWithoutDeadlock) {
  World w(config(4));
  w.run([](Comm& c) {
    // Everyone sends a large (rendezvous) payload right — a cycle that
    // deadlocks unless receives are posted before sends.
    std::vector<std::byte> out(100'000, std::byte(c.rank()));
    std::vector<std::byte> in(100'000);
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    c.sendrecv(out.data(), out.size(), Datatype::byte(), right, 1, in.data(),
               in.size(), Datatype::byte(), left, 1);
    EXPECT_EQ(in[0], std::byte(left));
    EXPECT_EQ(in[99'999], std::byte(left));
  });
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

class MpiCollectives : public ::testing::TestWithParam<int> {};

TEST_P(MpiCollectives, BarrierCompletes) {
  World w(config(GetParam()));
  w.run([](Comm& c) {
    for (int i = 0; i < 3; ++i) c.barrier();
  });
}

TEST_P(MpiCollectives, BcastFromEveryRoot) {
  World w(config(GetParam()));
  w.run([](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      std::vector<std::int64_t> data(100);
      if (c.rank() == root) {
        std::iota(data.begin(), data.end(), root * 1000);
      }
      c.bcast(data.data(), data.size(), Datatype::int64(), root);
      EXPECT_EQ(data[0], root * 1000);
      EXPECT_EQ(data[99], root * 1000 + 99);
    }
  });
}

TEST_P(MpiCollectives, AllreduceSumMinMax) {
  World w(config(GetParam()));
  w.run([](Comm& c) {
    const int n = c.size();
    std::vector<std::int64_t> v = {c.rank() + 1, 100 - c.rank(),
                                   static_cast<std::int64_t>(c.rank())};
    auto sum = v;
    c.allreduce(std::span<std::int64_t>(sum), Op::kSum);
    EXPECT_EQ(sum[0], static_cast<std::int64_t>(n) * (n + 1) / 2);
    auto mn = v;
    c.allreduce(std::span<std::int64_t>(mn), Op::kMin);
    EXPECT_EQ(mn[1], 100 - (n - 1));
    auto mx = v;
    c.allreduce(std::span<std::int64_t>(mx), Op::kMax);
    EXPECT_EQ(mx[2], n - 1);
  });
}

TEST_P(MpiCollectives, AllgatherConcatenates) {
  World w(config(GetParam()));
  w.run([](Comm& c) {
    const std::uint64_t mine = 1000 + static_cast<std::uint64_t>(c.rank());
    std::vector<std::uint64_t> all(static_cast<std::size_t>(c.size()));
    c.allgather(&mine, sizeof(mine), all.data());
    for (int i = 0; i < c.size(); ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)], 1000u + i);
    }
  });
}

TEST_P(MpiCollectives, AllgathervVaryingSizes) {
  World w(config(GetParam()));
  w.run([](Comm& c) {
    const int n = c.size();
    // Rank r contributes r+1 bytes of value r.
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> displs(static_cast<std::size_t>(n));
    std::uint64_t total = 0;
    for (int i = 0; i < n; ++i) {
      counts[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i) + 1;
      displs[static_cast<std::size_t>(i)] = total;
      total += counts[static_cast<std::size_t>(i)];
    }
    std::vector<std::byte> mine(static_cast<std::size_t>(c.rank()) + 1,
                                std::byte(c.rank()));
    std::vector<std::byte> all(total, std::byte{0xff});
    c.allgatherv(mine.data(), mine.size(), all.data(), counts, displs);
    for (int i = 0; i < n; ++i) {
      for (std::uint64_t b = 0; b < counts[static_cast<std::size_t>(i)]; ++b) {
        EXPECT_EQ(all[displs[static_cast<std::size_t>(i)] + b], std::byte(i));
      }
    }
  });
}

TEST_P(MpiCollectives, AlltoallvPersonalizedExchange) {
  World w(config(GetParam()));
  w.run([](Comm& c) {
    const int n = c.size();
    // Rank r sends (r*n + d) as one int to each destination d.
    std::vector<std::int32_t> sbuf(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(n),
                                      sizeof(std::int32_t));
    std::vector<std::uint64_t> displs(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      sbuf[static_cast<std::size_t>(d)] = c.rank() * n + d;
      displs[static_cast<std::size_t>(d)] =
          static_cast<std::uint64_t>(d) * sizeof(std::int32_t);
    }
    std::vector<std::int32_t> rbuf(static_cast<std::size_t>(n), -1);
    c.alltoallv(sbuf.data(), counts, displs, rbuf.data(), counts, displs);
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(rbuf[static_cast<std::size_t>(s)], s * n + c.rank());
    }
  });
}

TEST_P(MpiCollectives, ExscanSum) {
  World w(config(GetParam()));
  w.run([](Comm& c) {
    const std::int64_t v = 10 + c.rank();
    const std::int64_t pre = c.exscan_sum(v);
    std::int64_t expect = 0;
    for (int i = 0; i < c.rank(); ++i) expect += 10 + i;
    EXPECT_EQ(pre, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(Np, MpiCollectives, ::testing::Values(1, 2, 3, 4, 8));

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

TEST(MpiComm, DupIsIndependentChannel) {
  World w(config(2));
  w.run([](Comm& c) {
    Comm d = c.dup();
    EXPECT_EQ(d.size(), c.size());
    EXPECT_NE(d.id(), c.id());
    // A message on d is invisible to a recv on c... exercise matching:
    int v = 5;
    if (c.rank() == 0) {
      d.send(&v, sizeof(v), Datatype::byte(), 1, 0);
      c.send(&v, sizeof(v), Datatype::byte(), 1, 0);
    } else {
      int x = 0, y = 0;
      c.recv(&x, sizeof(x), Datatype::byte(), 0, 0);
      d.recv(&y, sizeof(y), Datatype::byte(), 0, 0);
      EXPECT_EQ(x, 5);
      EXPECT_EQ(y, 5);
    }
  });
}

TEST(MpiComm, SplitIntoEvenOddGroups) {
  World w(config(4));
  w.run([](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    EXPECT_EQ(sub.size(), 2);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // Sum of global ranks within each subgroup.
    std::int64_t v = c.rank();
    std::vector<std::int64_t> vv = {v};
    sub.allreduce(std::span<std::int64_t>(vv), Op::kSum);
    EXPECT_EQ(vv[0], c.rank() % 2 == 0 ? 0 + 2 : 1 + 3);
  });
}

TEST(MpiComm, SplitByKeyReordersRanks) {
  World w(config(4));
  w.run([](Comm& c) {
    // Reverse order via descending keys.
    Comm sub = c.split(0, -c.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - c.rank());
  });
}

// ---------------------------------------------------------------------------
// Virtual-time behaviour
// ---------------------------------------------------------------------------

TEST(MpiTiming, RendezvousAvoidsCopiesForLargeContiguous) {
  World w(config(2));
  w.run([](Comm& c) {
    std::vector<std::byte> buf(4 << 20);
    if (c.rank() == 0) {
      c.send(buf.data(), buf.size(), Datatype::byte(), 1, 0);
    } else {
      c.recv(buf.data(), buf.size(), Datatype::byte(), 0, 0);
    }
  });
  // Neither side should have copied ~4 MiB through the CPU: rendezvous is
  // zero-copy for contiguous payloads (only registration is charged).
  const sim::CostModel cm;
  EXPECT_LT(w.rank_busy(0)[sim::CostKind::kCopy], cm.copy_time(1 << 20));
  EXPECT_LT(w.rank_busy(1)[sim::CostKind::kCopy], cm.copy_time(1 << 20));
}

TEST(MpiTiming, EagerChargesCopiesBothSides) {
  World w(config(2));
  w.run([](Comm& c) {
    std::vector<std::byte> buf(8 * 1024);
    if (c.rank() == 0) {
      c.send(buf.data(), buf.size(), Datatype::byte(), 1, 0);
    } else {
      c.recv(buf.data(), buf.size(), Datatype::byte(), 0, 0);
    }
  });
  const sim::CostModel cm;
  EXPECT_GE(w.rank_busy(0)[sim::CostKind::kCopy], cm.copy_time(8 * 1024));
  EXPECT_GE(w.rank_busy(1)[sim::CostKind::kCopy], cm.copy_time(8 * 1024));
}

TEST(MpiTiming, VirtualTimeAdvancesWithTraffic) {
  World w(config(2));
  w.run([](Comm& c) {
    std::vector<std::byte> buf(1 << 20);
    for (int i = 0; i < 4; ++i) {
      if (c.rank() == 0) {
        c.send(buf.data(), buf.size(), Datatype::byte(), 1, 0);
      } else {
        c.recv(buf.data(), buf.size(), Datatype::byte(), 0, 0);
      }
    }
  });
  const sim::CostModel cm;
  // Four 1 MiB transfers cannot beat the wire.
  EXPECT_GE(w.rank_time(1), cm.wire_time(4u << 20));
}


TEST(MpiWorlds, TwoConcurrentWorldsOnOneFabric) {
  // Two independent MPI jobs share the cluster fabric (distinct bootstrap
  // namespaces); their traffic must not interfere.
  sim::Fabric fabric;
  auto run_world = [&fabric](const std::string& name, int np,
                             std::atomic<int>& fails) {
    mpi::WorldConfig cfg;
    cfg.nprocs = np;
    cfg.fabric = &fabric;
    cfg.name = name;
    mpi::World w(cfg);
    w.run([&](Comm& c) {
      for (int round = 0; round < 10; ++round) {
        std::int64_t v = c.rank() + round;
        std::vector<std::int64_t> vv = {v};
        c.allreduce(std::span<std::int64_t>(vv), Op::kSum);
        std::int64_t expect = 0;
        for (int r = 0; r < c.size(); ++r) expect += r + round;
        if (vv[0] != expect) ++fails;
        c.barrier();
      }
    });
  };
  std::atomic<int> fails_a{0}, fails_b{0};
  std::thread ta([&] { run_world("jobA", 3, fails_a); });
  std::thread tb([&] { run_world("jobB", 4, fails_b); });
  ta.join();
  tb.join();
  EXPECT_EQ(fails_a.load(), 0);
  EXPECT_EQ(fails_b.load(), 0);
}

TEST(MpiWorlds, ExplicitNodePlacementColocatesRanks) {
  // Two ranks pinned to ONE node share its CPU: their combined busy time
  // serializes through the shared resource.
  sim::Fabric fabric;
  const auto shared = fabric.add_node("smp");
  const auto other = fabric.add_node("other");
  mpi::WorldConfig cfg;
  cfg.nprocs = 2;
  cfg.fabric = &fabric;
  cfg.nodes = {shared, shared};
  (void)other;
  mpi::World w(cfg);
  w.run([](Comm& c) {
    std::vector<std::byte> buf(8 * 1024);
    for (int i = 0; i < 4; ++i) {
      if (c.rank() == 0) {
        c.send(buf.data(), buf.size(), Datatype::byte(), 1, 0);
      } else {
        c.recv(buf.data(), buf.size(), Datatype::byte(), 0, 0);
      }
    }
  });
  // Both ranks charged copy work against the same node CPU: the node's
  // total busy must cover both ranks' charges.
  const sim::Time busy0 = w.rank_busy(0).total();
  const sim::Time busy1 = w.rank_busy(1).total();
  EXPECT_GE(fabric.node(shared).cpu.total_busy(), busy0 + busy1);
}

TEST(MpiWorlds, EagerThresholdConfigSelectsProtocol) {
  mpi::WorldConfig cfg;
  cfg.nprocs = 2;
  cfg.eager_threshold = 256;  // tiny: everything beyond 256 B goes rendezvous
  mpi::World w(cfg);
  w.run([&w](Comm& c) {
    std::vector<std::byte> buf(4 * 1024);
    if (c.rank() == 0) {
      c.send(buf.data(), buf.size(), Datatype::byte(), 1, 0);
    } else {
      c.recv(buf.data(), buf.size(), Datatype::byte(), 0, 0);
    }
    c.barrier();
    if (c.rank() == 0) {
      EXPECT_GT(w.fabric().stats().get("mpi.rndv_msgs"), 0u);
    }
  });
}

}  // namespace
