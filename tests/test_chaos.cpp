#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"

/// \file test_chaos.cpp
/// Server crash/restart chaos suite (ctest label `chaos`): seeded fault
/// schedules kill the DAFS server mid-workload — optionally mixed with
/// connection breaks, transfer delays and short reads — and every scenario
/// must end with (1) synced data byte-exact, (2) exactly-once counter
/// mutations across restarts, and (3) completion inside a real-time watchdog
/// bound. Overload, deadline-expiry and lease/stale-handle semantics are
/// covered by dedicated scenarios below the sweep.

namespace {

using dafs::PStatus;
using mpi::Comm;
using mpi::Datatype;
using mpiio::Err;
using mpiio::ErrClass;
using mpiio::File;
using mpiio::Info;
using sim::Actor;
using sim::ActorScope;

constexpr std::uint64_t kChunk = 32 * 1024;

/// Arms the fabric's flight recorder for the enclosing test; if the test has
/// failed by the time the guard dies, dumps everything the recorder holds
/// (closed spans, orphaned in-flight spans, crash/deadline events) and
/// prints the dump path so the failure can be replayed on a timeline.
class FlightDumpOnFailure {
 public:
  explicit FlightDumpOnFailure(sim::Fabric& fabric) : fabric_(fabric) {
    fabric_.trace().set_enabled(true);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    if (info != nullptr) {
      fabric_.trace().set_dump_path(std::string("chaos_") + info->name() +
                                    ".json");
    }
  }
  ~FlightDumpOnFailure() {
    if (!::testing::Test::HasFailure()) return;
    const std::string path = fabric_.trace().flight_dump("assert");
    if (!path.empty()) {
      std::fprintf(stderr,
                   "[chaos] test failed: flight recorder dumped to %s "
                   "(load in https://ui.perfetto.dev)\n",
                   path.c_str());
    }
  }
  FlightDumpOnFailure(const FlightDumpOnFailure&) = delete;
  FlightDumpOnFailure& operator=(const FlightDumpOnFailure&) = delete;

 private:
  sim::Fabric& fabric_;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

dafs::MountSpec chaos_cfg(std::uint64_t seed, int rank) {
  dafs::RetryPolicy retry;
  retry.backoff_ns = 20'000;
  retry.backoff_cap_ns = 2'000'000;
  retry.jitter_seed = seed * 131 + static_cast<std::uint64_t>(rank);
  return dafs::single_mount("dafs", retry);
}

/// Wait (real time) until the server's listener is back after a crash.
void wait_restart(dafs::Server& server) {
  while (server.crashed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------------
// The capstone: seeded crash-mid-collective sweep with mixed faults
// ---------------------------------------------------------------------------

struct ChaosCounters {
  std::uint64_t crashes = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t replay_hits = 0;
};

/// One seed of the sweep: a 4-rank world writes a durable (synced) baseline
/// file, then runs collective writes + shared counters with the crash
/// schedule armed. The server dies mid-workload and restarts; afterwards the
/// ranks redo the second phase in a clean world and everything is verified
/// byte-exact through a pristine session. Counter totals must show each
/// fetch_add applied exactly once, crash or no crash.
ChaosCounters run_crash_world(std::uint64_t seed) {
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr int kRanks = 4;
  constexpr int kAdds = 5;
  constexpr std::uint64_t kDelta = 7;

  sim::Fabric fabric;
  FlightDumpOnFailure flight(fabric);
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 10;  // keep reclaim-vs-retry real time short
  dafs::Server server(fabric, fabric.add_node("filer"), scfg);
  server.start();

  mpi::WorldConfig wcfg;
  wcfg.nprocs = kRanks;
  wcfg.fabric = &fabric;
  wcfg.name = "chaos";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(
        dafs::Session::connect(nic, chaos_cfg(seed, c.rank())).value());
    auto fa = std::move(File::open(c, "/a.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*session))
                            .value());
    auto fb = std::move(File::open(c, "/b.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*session))
                            .value());
    // Baseline for rank 0's crash-trip polling below.
    auto poll_fh = session->open("/a.dat").value();

    // Phase 1 (no faults): durable baseline. Synced bytes must survive the
    // crash byte-exact no matter where it lands.
    const std::uint64_t off = c.rank() * kChunk;
    const auto da = pattern(kChunk, 1000 + seed * 10 + c.rank());
    ASSERT_TRUE(fa->write_at_all(off, da.data(), kChunk, Datatype::byte()).ok());
    ASSERT_EQ(fa->sync(), Err::kOk);
    c.barrier();

    // Arm the schedule: a crash a handful of admitted requests in, mixed —
    // per seed — with drops, delays or short reads on the DAFS connections.
    if (c.rank() == 0) {
      auto& plan = fabric.faults();
      plan.arm(seed);
      plan.restrict_to_conn("dafs");
      plan.crash_server_after_requests(2 + seed * 3, /*restart_delay_ms=*/15);
      switch (seed % 3) {
        case 0: plan.set_drop_prob(0.02); break;
        case 1: plan.set_delay(0.3, 50'000); break;
        case 2: plan.set_short_read_prob(0.3); break;
      }
    }
    c.barrier();

    // Phase 2 (faulted): collective writes to a second file plus shared
    // counter traffic. Recovery is transparent, so every op must eventually
    // succeed; the crash legally erases /b.dat's un-synced bytes (they are
    // rewritten clean below) but never the counter's exactly-once history.
    const auto db = pattern(kChunk, 2000 + seed * 10 + c.rank());
    bool ok = false;
    for (int t = 0; t < 8 && !ok; ++t) {
      ok = fb->write_at_all(off, db.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "faulted collective write, seed " << seed;
    for (int i = 0; i < kAdds; ++i) {
      auto r = session->fetch_add("chaos.ctr", kDelta);
      ASSERT_TRUE(r.ok()) << "fetch_add " << i << ", seed " << seed << ": "
                          << dafs::to_string(r.error());
    }
    c.barrier();

    // Make sure the armed crash actually fired before disarming: rank 0
    // pushes idempotent requests until the admitted-request counter trips it.
    if (c.rank() == 0) {
      int guard = 0;
      while (fabric.stats().get("dafs.server_crashes") == 0 && guard++ < 500) {
        (void)session->getattr(poll_fh);
      }
      EXPECT_GE(fabric.stats().get("dafs.server_crashes"), 1u)
          << "seed " << seed;
      wait_restart(server);
      fabric.faults().clear();
    }
    c.barrier();

    // Phase 3 (clean): rewrite the second file and sync — the durable
    // post-state every seed must agree on.
    ok = false;
    for (int t = 0; t < 8 && !ok; ++t) {
      ok = fb->write_at_all(off, db.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "clean rewrite, seed " << seed;
    ASSERT_EQ(fb->sync(), Err::kOk);

    // Read-back through MPI-IO on the (recovered) sessions.
    std::vector<std::byte> back(kChunk);
    ASSERT_TRUE(fa->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), da.data(), kChunk), 0)
        << "synced baseline, seed " << seed;
    ASSERT_TRUE(fb->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), db.data(), kChunk), 0);

    fa->close();
    fb->close();
  });

  // Exactly-once: 4 ranks x kAdds adds of kDelta, regardless of how many
  // replays, retransmits and restarts happened in between.
  {
    const auto node = fabric.add_node("verify");
    Actor actor("verify", &fabric.node(node));
    ActorScope scope(actor);
    via::Nic nic(fabric, node, "vnic");
    auto s = std::move(dafs::Session::connect(nic).value());
    EXPECT_EQ(s->fetch_add("chaos.ctr", 0).value(),
              static_cast<std::uint64_t>(kRanks) * kAdds * kDelta)
        << "seed " << seed;
    for (const char* path : {"/a.dat", "/b.dat"}) {
      auto fh = s->open(path).value();
      const std::uint64_t base =
          std::string_view(path) == "/a.dat" ? 1000 : 2000;
      std::vector<std::byte> all(kRanks * kChunk);
      auto rd = s->pread(fh, 0, all);
      EXPECT_TRUE(rd.ok());
      if (!rd.ok()) continue;
      for (int r = 0; r < kRanks; ++r) {
        const auto expect = pattern(kChunk, base + seed * 10 + r);
        EXPECT_EQ(std::memcmp(all.data() + r * kChunk, expect.data(), kChunk),
                  0)
            << path << " rank " << r << " seed " << seed;
      }
    }
    s.reset();
  }

  // Watchdog: chaos or not, a seed must finish in bounded real time (the
  // virtual-time fabric makes this generous even under sanitizers).
  EXPECT_LT(std::chrono::steady_clock::now() - wall_start,
            std::chrono::seconds(60))
      << "seed " << seed;

  ChaosCounters out;
  out.crashes = fabric.stats().get("dafs.server_crashes");
  out.reclaims = fabric.stats().get("dafs.session_reclaims");
  out.replay_hits = fabric.stats().get("dafs.replay_hits");
  return out;
}

TEST(Chaos, SeededCrashMidCollectiveSweep) {
  ChaosCounters total;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto c = run_crash_world(seed);
    total.crashes += c.crashes;
    total.reclaims += c.reclaims;
    total.replay_hits += c.replay_hits;
  }
  // Every seed crashed at least once, and the lease-reclaim path (server
  // state rebuilt from client leases) ran across the sweep.
  EXPECT_GE(total.crashes, 8u);
  EXPECT_GE(total.reclaims, 8u);
}

// ---------------------------------------------------------------------------
// sync() is the durability barrier
// ---------------------------------------------------------------------------

TEST(Chaos, SyncedDataSurvivesUnsyncedDataVanishes) {
  sim::Fabric fabric;
  FlightDumpOnFailure flight(fabric);
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 5;
  dafs::Server server(fabric, fabric.add_node("filer"), scfg);
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic, chaos_cfg(3, 0)).value());

  const auto va = pattern(2 * kChunk, 71);  // spans multiple store chunks
  const auto vb = pattern(2 * kChunk, 72);
  auto fh = s->open("/bar.dat", dafs::kOpenCreate).value();
  ASSERT_TRUE(s->pwrite(fh, 0, va).ok());
  ASSERT_EQ(s->sync(fh), PStatus::kOk);

  // Overwrite without syncing, then kill the server: the overwrite was
  // acknowledged but not durable, so the restarted server must expose the
  // full pre-image — never a mix.
  ASSERT_TRUE(s->pwrite(fh, 0, vb).ok());
  server.inject_crash(5);
  wait_restart(server);
  std::vector<std::byte> back(va.size());
  ASSERT_TRUE(s->pread(fh, 0, back).ok());  // transparent recovery + reclaim
  EXPECT_EQ(std::memcmp(back.data(), va.data(), back.size()), 0)
      << "un-synced overwrite leaked into the durable image";

  // Same overwrite with a sync barrier: now the post-image must survive.
  ASSERT_TRUE(s->pwrite(fh, 0, vb).ok());
  ASSERT_EQ(s->sync(fh), PStatus::kOk);
  server.inject_crash(5);
  wait_restart(server);
  ASSERT_TRUE(s->pread(fh, 0, back).ok());
  EXPECT_EQ(std::memcmp(back.data(), vb.data(), back.size()), 0);
  EXPECT_EQ(server.crash_count(), 2u);
  s.reset();
}

// ---------------------------------------------------------------------------
// Lease reclaim: gen validation surfaces kStale => MPI_ERR_FILE
// ---------------------------------------------------------------------------

TEST(Chaos, StaleHandleAfterFileReplacedUnderRestart) {
  static_assert(mpiio::error_class(Err::kStale) == ErrClass::kFile);
  static_assert(mpiio::error_class(Err::kBusy) == ErrClass::kIo);

  sim::Fabric fabric;
  FlightDumpOnFailure flight(fabric);
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 5;
  dafs::Server server(fabric, fabric.add_node("filer"), scfg);
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");

  // Client A: two files open, a lock held on the surviving one.
  auto a = std::move(dafs::Session::connect(nic, chaos_cfg(5, 0)).value());
  auto keep = a->open("/keep.dat", dafs::kOpenCreate).value();
  auto doomed = a->open("/doomed.dat", dafs::kOpenCreate).value();
  const auto data = pattern(1024, 81);
  ASSERT_TRUE(a->pwrite(keep, 0, data).ok());
  ASSERT_EQ(a->sync(keep), PStatus::kOk);
  ASSERT_EQ(a->lock(keep, 0, 512, /*exclusive=*/true), PStatus::kOk);

  server.inject_crash(5);
  wait_restart(server);

  // Client B arrives after the restart and replaces /doomed.dat: same path,
  // new (ino, gen) incarnation.
  auto b = std::move(dafs::Session::connect(nic, chaos_cfg(5, 1)).value());
  ASSERT_EQ(b->remove("/doomed.dat"), PStatus::kOk);
  ASSERT_TRUE(b->open("/doomed.dat", dafs::kOpenCreate).ok());

  // A's next op triggers recovery: resume => kBadSession => lease reclaim.
  // /keep.dat revalidates (same gen) and its lock is re-acquired under
  // kLockReclaim; /doomed.dat fails gen validation and goes stale.
  std::vector<std::byte> back(data.size());
  ASSERT_TRUE(a->pread(keep, 0, back).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);
  EXPECT_TRUE(a->is_stale(doomed));
  EXPECT_FALSE(a->is_stale(keep));
  EXPECT_EQ(a->stale_count(), 1u);
  auto r = a->pread(doomed, 0, back);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), PStatus::kStale);
  EXPECT_EQ(mpiio::error_class(r.error()), ErrClass::kFile);
  EXPECT_GE(fabric.stats().get("dafs.session_reclaims"), 1u);
  EXPECT_GE(fabric.stats().get("dafs.stale_handles"), 1u);

  // The reclaimed lock is real: B's conflicting acquire is refused.
  while (server.in_grace()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto keep_b = b->open("/keep.dat").value();
  EXPECT_EQ(b->try_lock(keep_b, 0, 512, /*exclusive=*/true),
            PStatus::kLockConflict);
  a.reset();
  b.reset();
}

// ---------------------------------------------------------------------------
// Overload: admission queue saturation => kBusy + backoff, bounded memory
// ---------------------------------------------------------------------------

TEST(Chaos, OverloadShedsWithBusyThenDrains) {
  sim::Fabric fabric;
  FlightDumpOnFailure flight(fabric);
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  dafs::MountSpec mspec = chaos_cfg(9, 0);
  mspec.endpoints[0].retry.max_busy_retries = 4;  // bounded, then kBusy
  auto s = std::move(dafs::Session::connect(nic, mspec).value());
  auto fh = s->open("/busy.dat", dafs::kOpenCreate).value();
  const auto data = pattern(1024, 91);
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());

  // Saturate: drain mode admits nothing but connection management, so every
  // retry hits kBusy + retry-after until the client's budget runs out.
  server.set_admission_limit(0);
  std::vector<std::byte> shed_buf(1024);
  auto r = s->pread(fh, 0, shed_buf);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), PStatus::kBusy);
  EXPECT_GE(fabric.stats().get("dafs.busy_shed"), 1u);
  EXPECT_GE(fabric.stats().get("dafs.busy_retries"), 1u);

  // The session survives shedding; lifting the limit drains the backlog.
  server.set_admission_limit(256);
  std::vector<std::byte> back(1024);
  ASSERT_TRUE(s->pread(fh, 0, back).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);

  // p99 service latency of *admitted* requests is in the histogram registry
  // (shed requests never reach it).
  const auto snap =
      fabric.histograms().get("dafs.server_service_ns").snapshot();
  EXPECT_GT(snap.count, 0u);
  EXPECT_GT(snap.quantile(0.99), 0u);
  EXPECT_GE(snap.quantile(0.99), snap.quantile(0.50));
  s.reset();
}

TEST(Chaos, ReplayCacheBoundedByBytes) {
  sim::Fabric fabric;
  FlightDumpOnFailure flight(fabric);
  dafs::ServerConfig scfg;
  scfg.replay_max_bytes = 256;  // a few header-sized responses
  dafs::Server server(fabric, fabric.add_node("filer"), scfg);
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());
  auto fh = s->open("/rb.dat", dafs::kOpenCreate).value();

  // Keep all credit slots in flight so the piggybacked cumulative ack cannot
  // advance: the byte cap alone must bound the cache.
  const auto data = pattern(256, 101);
  for (int round = 0; round < 4; ++round) {
    std::vector<dafs::OpId> ops;
    for (int i = 0; i < 8; ++i) {
      auto op = s->submit_pwrite(fh, static_cast<std::uint64_t>(i) * 256,
                                 std::span<const std::byte>(data));
      ASSERT_TRUE(op.ok());
      ops.push_back(op.value());
    }
    ASSERT_EQ(s->wait_all(ops), PStatus::kOk);
  }
  EXPECT_LE(server.replay_cache_bytes(), scfg.replay_max_bytes);
  EXPECT_GE(fabric.stats().get("dafs.replay_forced_evictions"), 1u);
  // Acks did run once slots drained between rounds.
  EXPECT_GE(fabric.stats().get("dafs.replay_acked_evictions"), 1u);
  s.reset();
}

// ---------------------------------------------------------------------------
// Deadlines: propagated end-to-end, expired requests shed without retry
// ---------------------------------------------------------------------------

TEST(Chaos, ExpiredDeadlineIsShedNotRetried) {
  sim::Fabric fabric;
  FlightDumpOnFailure flight(fabric);
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());
  auto fh = s->open("/dl.dat", dafs::kOpenCreate).value();
  const auto data = pattern(1024, 111);
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());

  // A 1 ns budget cannot survive the wire: the server's (causally synced)
  // clock is past the stamped deadline on arrival, so the request is shed
  // with kBusy and a zero retry hint — the client must not burn retries.
  s->set_deadline(1);
  const auto retries_before = fabric.stats().get("dafs.busy_retries");
  std::vector<std::byte> back(1024);
  auto r = s->pread(fh, 0, back);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), PStatus::kBusy);
  EXPECT_GE(fabric.stats().get("dafs.deadline_expired"), 1u);
  EXPECT_EQ(fabric.stats().get("dafs.busy_retries"), retries_before);

  // Clearing the deadline restores service; a generous one is harmless.
  s->set_deadline(0);
  ASSERT_TRUE(s->pread(fh, 0, back).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);
  s->set_deadline(10'000'000'000ull);  // 10 s virtual: never expires here
  ASSERT_TRUE(s->pread(fh, 0, back).ok());
  s.reset();
}

TEST(Chaos, DeadlineHintFlowsThroughMpiIo) {
  sim::Fabric fabric;
  FlightDumpOnFailure flight(fabric);
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  mpi::WorldConfig wcfg;
  wcfg.nprocs = 2;
  wcfg.fabric = &fabric;
  wcfg.name = "dl";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    Info info;
    info.set("dafs_deadline_ms", std::uint64_t{5000});
    auto f = std::move(File::open(c, "/hint.dat",
                                  mpiio::kModeCreate | mpiio::kModeRdwr, info,
                                  mpiio::dafs_driver(*session))
                           .value());
    // The hint reached the transport: every request now carries the budget.
    EXPECT_EQ(session->deadline(), 5000ull * 1'000'000);
    const auto data = pattern(kChunk, 121 + c.rank());
    ASSERT_TRUE(f->write_at_all(c.rank() * kChunk, data.data(), kChunk,
                                Datatype::byte())
                    .ok());
    std::vector<std::byte> back(kChunk);
    ASSERT_TRUE(f->read_at_all(c.rank() * kChunk, back.data(), kChunk,
                               Datatype::byte())
                    .ok());
    EXPECT_EQ(std::memcmp(back.data(), data.data(), kChunk), 0);
    f->close();
  });
}

}  // namespace
