#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "nfs/client.hpp"
#include "nfs/server.hpp"
#include "sim/rng.hpp"

namespace {

using dafs::PStatus;
using mpi::Comm;
using mpi::Datatype;
using mpiio::Err;
using mpiio::File;
using mpiio::Info;
using sim::Actor;
using sim::ActorScope;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

// ---------------------------------------------------------------------------
// Disk model end to end
// ---------------------------------------------------------------------------

TEST(Integration, ColdCacheReadsPayDiskWarmReadsDoNot) {
  dafs::ServerConfig scfg;
  scfg.store.disk_enabled = true;
  scfg.store.cache_chunks = 1024;
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"), scfg);
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());
  auto fh = s->open("/cold.dat", dafs::kOpenCreate).value();
  auto data = pattern(1 << 20, 1);
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());  // populates the cache

  // Evict by writing a second, much larger file.
  auto fh2 = s->open("/streamer.dat", dafs::kOpenCreate).value();
  auto big = pattern(8 << 20, 2);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(s->pwrite(fh2, static_cast<std::uint64_t>(i) * big.size(), big)
                    .ok());
  }

  std::vector<std::byte> back(1 << 20);
  const sim::Time t0 = actor.now();
  ASSERT_TRUE(s->pread(fh, 0, back).ok());  // cold: disk misses
  const sim::Time cold = actor.now() - t0;
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);

  const sim::Time t1 = actor.now();
  ASSERT_TRUE(s->pread(fh, 0, back).ok());  // warm: cache hits
  const sim::Time warm = actor.now() - t1;

  // 16 chunk misses at >=5 ms each dominate the cold read.
  EXPECT_GT(cold, warm * 5);
  EXPECT_GT(server.store().stats().get("fstore.cache_misses"), 0u);
  EXPECT_GT(server.store().stats().get("fstore.cache_evictions"), 0u);
  s.reset();
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

TEST(Integration, DafsServerStopFailsClientCleanly) {
  sim::Fabric fabric;
  auto server = std::make_unique<dafs::Server>(fabric, fabric.add_node("filer"));
  server->start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());
  auto fh = s->open("/f", dafs::kOpenCreate).value();
  auto data = pattern(64 * 1024, 3);
  ASSERT_TRUE(s->pwrite(fh, 0, data).ok());

  server->stop();  // tears down sessions; client VIs flushed

  // Every subsequent operation must fail promptly, never hang.
  auto r = s->pwrite(fh, 0, data);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(s->getattr(fh).ok());
  EXPECT_FALSE(s->open("/g", dafs::kOpenCreate).ok());
  s.reset();
}

TEST(Integration, NfsServerStopFailsClientCleanly) {
  sim::Fabric fabric;
  auto server = std::make_unique<nfs::Server>(fabric, fabric.add_node("srv"));
  server->start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  auto c = std::move(nfs::Client::connect(fabric, node).value());
  auto ino = c->open("/f", nfs::kOpenCreate).value();
  auto data = pattern(16 * 1024, 4);
  ASSERT_TRUE(c->pwrite(ino, 0, data).ok());

  server.reset();  // connection torn down

  std::vector<std::byte> back(1024);
  EXPECT_FALSE(c->pread(ino, 0, back).ok());
  EXPECT_FALSE(c->getattr(ino).ok());
}

TEST(Integration, DafsSessionSurvivesPeerSessionTeardown) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s1 = std::move(dafs::Session::connect(nic).value());
  auto s2 = std::move(dafs::Session::connect(nic).value());
  auto fh = s1->open("/shared", dafs::kOpenCreate).value();
  auto data = pattern(32 * 1024, 5);
  ASSERT_TRUE(s1->pwrite(fh, 0, data).ok());
  s1.reset();  // one session goes away
  // The other session is unaffected.
  auto fh2 = s2->open("/shared").value();
  std::vector<std::byte> back(32 * 1024);
  ASSERT_TRUE(s2->pread(fh2, 0, back).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);
  s2.reset();
}

// ---------------------------------------------------------------------------
// Atomic mode under contention
// ---------------------------------------------------------------------------

TEST(Integration, AtomicModeSerializesWholeRangeAccess) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();

  constexpr std::uint64_t kRange = 128 * 1024;
  constexpr int kRounds = 12;
  std::atomic<bool> stop{false};
  std::atomic<int> mixed{0};

  // Writer: repeatedly fills the range with a round-stamped byte under an
  // exclusive whole-range lock (what MPI-IO atomic mode does).
  std::thread writer([&] {
    const auto node = fabric.add_node("writer");
    Actor actor("writer", &fabric.node(node));
    ActorScope scope(actor);
    via::Nic nic(fabric, node, "nic-w");
    auto s = std::move(dafs::Session::connect(nic).value());
    auto fh = s->open("/atomic.dat", dafs::kOpenCreate).value();
    std::vector<std::byte> buf(kRange);
    for (int round = 0; round < kRounds; ++round) {
      std::fill(buf.begin(), buf.end(), std::byte(round & 0xff));
      ASSERT_EQ(s->lock(fh, 0, kRange, true), PStatus::kOk);
      ASSERT_TRUE(s->pwrite(fh, 0, buf).ok());
      ASSERT_EQ(s->unlock(fh, 0, kRange), PStatus::kOk);
    }
    stop.store(true);
    s.reset();
  });

  // Reader: under a shared lock, the range must always be uniform.
  std::thread reader([&] {
    const auto node = fabric.add_node("reader");
    Actor actor("reader", &fabric.node(node));
    ActorScope scope(actor);
    via::Nic nic(fabric, node, "nic-r");
    auto s = std::move(dafs::Session::connect(nic).value());
    dafs::Fh fh;
    while (!fh.valid()) {
      auto r = s->open("/atomic.dat");
      if (r.ok()) fh = r.value();
    }
    std::vector<std::byte> buf(kRange);
    while (!stop.load()) {
      if (s->lock(fh, 0, kRange, false) != PStatus::kOk) continue;
      auto got = s->pread(fh, 0, buf);
      s->unlock(fh, 0, kRange);
      if (!got.ok() || got.value() == 0) continue;
      const std::byte first = buf[0];
      for (std::uint64_t i = 0; i < got.value(); i += 4097) {
        if (buf[i] != first) {
          ++mixed;
          break;
        }
      }
    }
    s.reset();
  });

  writer.join();
  reader.join();
  EXPECT_EQ(mixed.load(), 0);
}

// ---------------------------------------------------------------------------
// Multi-worker server
// ---------------------------------------------------------------------------

TEST(Integration, MultiWorkerServerServesConcurrentSessions) {
  dafs::ServerConfig scfg;
  scfg.workers = 2;
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"), scfg);
  server.start();

  constexpr int kClients = 3;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const auto node = fabric.add_node("c" + std::to_string(i));
      Actor actor("c" + std::to_string(i), &fabric.node(node));
      ActorScope scope(actor);
      via::Nic nic(fabric, node, "nic");
      auto s = std::move(dafs::Session::connect(nic).value());
      auto fh =
          s->open("/w" + std::to_string(i), dafs::kOpenCreate).value();
      auto data = pattern(256 * 1024, 40 + i);
      for (int k = 0; k < 6; ++k) {
        if (!s->pwrite(fh, static_cast<std::uint64_t>(k) * data.size(), data)
                 .ok()) {
          ++failures;
        }
      }
      std::vector<std::byte> back(data.size());
      for (int k = 0; k < 6; ++k) {
        auto r =
            s->pread(fh, static_cast<std::uint64_t>(k) * data.size(), back);
        if (!r.ok() || std::memcmp(back.data(), data.data(), back.size())) {
          ++failures;
        }
      }
      s.reset();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.session_count(), static_cast<std::size_t>(kClients));
}

// ---------------------------------------------------------------------------
// Sequential MPI worlds sharing one filer
// ---------------------------------------------------------------------------

TEST(Integration, SecondWorldReadsFirstWorldsFile) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();

  constexpr std::uint64_t kChunk = 64 * 1024;
  {
    mpi::WorldConfig cfg;
    cfg.nprocs = 4;
    cfg.fabric = &fabric;
    cfg.name = "w1";
    mpi::World w1(cfg);
    w1.run([&](Comm& c) {
      via::Nic nic(fabric, w1.node_of(c.rank()), "cli");
      auto session = std::move(dafs::Session::connect(nic).value());
      auto f = std::move(File::open(c, "/handoff.dat",
                                    mpiio::kModeCreate | mpiio::kModeRdwr,
                                    Info{}, mpiio::dafs_driver(*session))
                             .value());
      auto data = pattern(kChunk, 70 + c.rank());
      ASSERT_TRUE(
          f->write_at(c.rank() * kChunk, data.data(), kChunk, Datatype::byte())
              .ok());
      f->close();
    });
  }
  {
    mpi::WorldConfig cfg;
    cfg.nprocs = 2;  // different world size
    cfg.fabric = &fabric;
    cfg.name = "w2";
    mpi::World w2(cfg);
    w2.run([&](Comm& c) {
      via::Nic nic(fabric, w2.node_of(c.rank()), "cli");
      auto session = std::move(dafs::Session::connect(nic).value());
      auto f = std::move(File::open(c, "/handoff.dat", mpiio::kModeRdonly,
                                    Info{}, mpiio::dafs_driver(*session))
                             .value());
      // Each of the 2 readers checks two of the 4 chunks.
      for (int k = 0; k < 2; ++k) {
        const int writer = c.rank() * 2 + k;
        std::vector<std::byte> back(kChunk);
        ASSERT_TRUE(f->read_at(writer * kChunk, back.data(), kChunk,
                               Datatype::byte())
                        .ok());
        auto expect = pattern(kChunk, 70 + writer);
        EXPECT_EQ(std::memcmp(back.data(), expect.data(), kChunk), 0);
      }
      f->close();
    });
  }
}

// ---------------------------------------------------------------------------
// Split collectives & wait_any
// ---------------------------------------------------------------------------

TEST(Integration, SplitCollectiveMatchesBlockingCollective) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  mpi::WorldConfig cfg;
  cfg.nprocs = 4;
  cfg.fabric = &fabric;
  mpi::World world(cfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto session = std::move(dafs::Session::connect(nic).value());
    auto f = std::move(File::open(c, "/split.dat",
                                  mpiio::kModeCreate | mpiio::kModeRdwr,
                                  Info{}, mpiio::dafs_driver(*session))
                           .value());
    constexpr std::uint64_t kChunk = 32 * 1024;
    auto data = pattern(kChunk, 80 + c.rank());
    ASSERT_EQ(f->write_at_all_begin(c.rank() * kChunk, data.data(), kChunk,
                                    Datatype::byte()),
              Err::kOk);
    // A second outstanding split collective is refused (MPI-2 rule).
    EXPECT_EQ(f->write_at_all_begin(0, data.data(), 1, Datatype::byte()),
              Err::kInval);
    auto w = f->write_at_all_end(data.data());
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.value(), kChunk);

    std::vector<std::byte> back(kChunk);
    ASSERT_EQ(f->read_at_all_begin(c.rank() * kChunk, back.data(), kChunk,
                                   Datatype::byte()),
              Err::kOk);
    // Mismatched end pointer is refused.
    EXPECT_FALSE(f->read_at_all_end(data.data()).ok());
    auto r = f->read_at_all_end(back.data());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(std::memcmp(back.data(), data.data(), kChunk), 0);
    f->close();
  });
}

TEST(Integration, DafsWaitAnyReturnsCompletedOp) {
  sim::Fabric fabric;
  dafs::Server server(fabric, fabric.add_node("filer"));
  server.start();
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto s = std::move(dafs::Session::connect(nic).value());
  auto fh = s->open("/any.dat", dafs::kOpenCreate).value();
  std::vector<std::vector<std::byte>> bufs;
  std::vector<dafs::OpId> ops;
  for (int i = 0; i < 4; ++i) {
    bufs.push_back(pattern(64 * 1024, 90 + i));
    ops.push_back(s->submit_pwrite(fh, static_cast<std::uint64_t>(i) * 64 * 1024,
                                   bufs.back())
                      .value());
  }
  std::vector<dafs::OpId> remaining = ops;
  int completed = 0;
  while (!remaining.empty()) {
    std::uint64_t bytes = 0;
    auto idx = s->wait_any(remaining, &bytes);
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(bytes, 64u * 1024);
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(idx.value()));
    ++completed;
  }
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(s->getattr(fh).value().size, 4u * 64 * 1024);
  std::vector<dafs::OpId> empty;
  EXPECT_FALSE(s->wait_any(empty).ok());
  s.reset();
}

// ---------------------------------------------------------------------------
// Property: random strided views, MPI-IO vs reference model
// ---------------------------------------------------------------------------

TEST(Integration, RandomViewsMatchReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::Rng rng(seed * 7919);
    sim::Fabric fabric;
    dafs::Server server(fabric, fabric.add_node("filer"));
    server.start();
    mpi::WorldConfig cfg;
    cfg.nprocs = 1;
    cfg.fabric = &fabric;
    mpi::World world(cfg);

    // Random strided view: block `b` of every `s` bytes.
    const std::uint32_t block = 64 + static_cast<std::uint32_t>(rng.below(2000));
    const std::uint32_t stride =
        block + 1 + static_cast<std::uint32_t>(rng.below(3000));
    const std::uint64_t disp = rng.below(500);
    const std::uint64_t count = 20 + rng.below(60);  // visible blocks to write
    const std::uint64_t view_off = rng.below(block * 3);

    std::vector<std::byte> reference;  // expected absolute file content
    world.run([&](Comm& c) {
      via::Nic nic(fabric, world.node_of(0), "cli");
      auto session = std::move(dafs::Session::connect(nic).value());
      auto f = std::move(File::open(c, "/prop.dat",
                                    mpiio::kModeCreate | mpiio::kModeRdwr,
                                    Info{}, mpiio::dafs_driver(*session))
                             .value());
      auto ft = mpi::Datatype::resized(
          mpi::Datatype::hvector(1, block, stride, mpi::Datatype::byte()), 0,
          stride);
      ASSERT_EQ(f->set_view(disp, mpi::Datatype::byte(), ft), Err::kOk);

      auto data = pattern(count * block, seed);
      ASSERT_TRUE(
          f->write_at(view_off, data.data(), data.size(), Datatype::byte())
              .ok());

      // Reference: place the same bytes with plain arithmetic.
      for (std::uint64_t i = 0; i < data.size(); ++i) {
        const std::uint64_t stream = view_off + i;  // view byte position
        const std::uint64_t tile = stream / block;
        const std::uint64_t within = stream % block;
        const std::uint64_t abs = disp + tile * stride + within;
        if (reference.size() < abs + 1) reference.resize(abs + 1);
        reference[abs] = data[i];
      }

      // Compare against a raw read of the whole file.
      auto raw = session->open("/prop.dat").value();
      const std::uint64_t fsize = session->getattr(raw).value().size;
      ASSERT_EQ(fsize, reference.size()) << "seed " << seed;
      std::vector<std::byte> all(fsize);
      ASSERT_TRUE(session->pread(raw, 0, all).ok());
      EXPECT_EQ(std::memcmp(all.data(), reference.data(), fsize), 0)
          << "seed " << seed << " block " << block << " stride " << stride;

      // And read back through the view.
      std::vector<std::byte> again(data.size());
      ASSERT_TRUE(
          f->read_at(view_off, again.data(), again.size(), Datatype::byte())
              .ok());
      EXPECT_EQ(std::memcmp(again.data(), data.data(), data.size()), 0);
      f->close();
    });
  }
}

}  // namespace
