#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/ad_nfs.hpp"
#include "mpiio/file.hpp"
#include "nfs/server.hpp"
#include "sim/rng.hpp"

namespace {

using mpi::Comm;
using mpi::Datatype;
using mpiio::Err;
using mpiio::File;
using mpiio::Info;
using mpiio::kModeCreate;
using mpiio::kModeDeleteOnClose;
using mpiio::kModeExcl;
using mpiio::kModeRdonly;
using mpiio::kModeRdwr;
using mpiio::kModeWronly;
using mpiio::Whence;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

/// A cluster: one fabric carrying a DAFS filer, an NFS server and N compute
/// nodes. Each rank makes its own session/client inside the run lambda.
class MpiioTest : public ::testing::Test {
 protected:
  static constexpr int kNp = 4;

  MpiioTest() {
    fabric_ = std::make_unique<sim::Fabric>();
    dafs_node_ = fabric_->add_node("filer");
    nfs_node_ = fabric_->add_node("nfs-server");
    dafs_server_ = std::make_unique<dafs::Server>(*fabric_, dafs_node_);
    nfs_server_ = std::make_unique<nfs::Server>(*fabric_, nfs_node_);
    dafs_server_->start();
    nfs_server_->start();
    mpi::WorldConfig cfg;
    cfg.nprocs = kNp;
    cfg.fabric = fabric_.get();
    world_ = std::make_unique<mpi::World>(cfg);
  }

  /// Per-rank DAFS context (second NIC on the rank's node).
  struct DafsCtx {
    via::Nic nic;
    std::unique_ptr<dafs::Session> session;
    DafsCtx(sim::Fabric& f, sim::NodeId node, dafs::ClientConfig cfg = {})
        : nic(f, node, "dafs-cli") {
      auto r = dafs::Session::connect(nic, dafs::MountSpec{{}, std::move(cfg)});
      EXPECT_TRUE(r.ok());
      if (r.ok()) session = std::move(r.value());
    }
  };

  std::unique_ptr<File> OpenDafs(Comm& c, DafsCtx& ctx,
                                 const std::string& path, int amode,
                                 const Info& info = {}) {
    auto f = File::open(c, path, amode, info, mpiio::dafs_driver(*ctx.session));
    EXPECT_TRUE(f.ok());
    return f.ok() ? std::move(f.value()) : nullptr;
  }

  std::unique_ptr<File> OpenNfs(Comm& c, nfs::Client& client,
                                const std::string& path, int amode,
                                const Info& info = {}) {
    auto f = File::open(c, path, amode, info, mpiio::nfs_driver(client));
    EXPECT_TRUE(f.ok());
    return f.ok() ? std::move(f.value()) : nullptr;
  }

  std::unique_ptr<sim::Fabric> fabric_;
  sim::NodeId dafs_node_, nfs_node_;
  std::unique_ptr<dafs::Server> dafs_server_;
  std::unique_ptr<nfs::Server> nfs_server_;
  std::unique_ptr<mpi::World> world_;
};

// ---------------------------------------------------------------------------
// Open / close semantics
// ---------------------------------------------------------------------------

TEST_F(MpiioTest, CollectiveOpenCreatesOnce) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/shared.dat", kModeCreate | kModeExcl | kModeRdwr);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->close(), Err::kOk);
  });
}

TEST_F(MpiioTest, OpenMissingFileFailsEverywhere) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = File::open(c, "/missing.dat", kModeRdwr, Info{},
                        mpiio::dafs_driver(*ctx.session));
    EXPECT_FALSE(f.ok());
  });
}

TEST_F(MpiioTest, DeleteOnCloseRemovesFile) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    {
      auto f = OpenDafs(c, ctx, "/temp.dat",
                        kModeCreate | kModeRdwr | kModeDeleteOnClose);
      ASSERT_NE(f, nullptr);
      EXPECT_EQ(f->close(), Err::kOk);
    }
    c.barrier();
    EXPECT_EQ(ctx.session->open("/temp.dat").error(), dafs::PStatus::kNoEnt);
  });
}

TEST_F(MpiioTest, WriteToRdonlyRejected) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/ro.dat", kModeCreate | kModeRdonly);
    ASSERT_NE(f, nullptr);
    std::byte b{1};
    EXPECT_EQ(f->write_at(0, &b, 1, Datatype::byte()).error(), Err::kInval);
    f->close();
  });
}

// ---------------------------------------------------------------------------
// Independent contiguous I/O (both drivers)
// ---------------------------------------------------------------------------

TEST_F(MpiioTest, ContiguousPerRankRegionsDafs) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/regions.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    constexpr std::uint64_t kChunk = 256 * 1024;
    auto mine = pattern(kChunk, 100 + c.rank());
    ASSERT_TRUE(f->write_at(c.rank() * kChunk, mine.data(), kChunk,
                            Datatype::byte())
                    .ok());
    c.barrier();
    // Read the next rank's region and verify.
    const int next = (c.rank() + 1) % c.size();
    std::vector<std::byte> theirs(kChunk);
    ASSERT_TRUE(
        f->read_at(next * kChunk, theirs.data(), kChunk, Datatype::byte())
            .ok());
    auto expect = pattern(kChunk, 100 + next);
    EXPECT_EQ(std::memcmp(theirs.data(), expect.data(), kChunk), 0);
    EXPECT_EQ(f->get_size().value(), kChunk * c.size());
    f->close();
  });
}

TEST_F(MpiioTest, ContiguousPerRankRegionsNfs) {
  world_->run([this](Comm& c) {
    auto client =
        nfs::Client::connect(*fabric_, world_->node_of(c.rank())).value();
    auto f = OpenNfs(c, *client, "/regions.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    constexpr std::uint64_t kChunk = 64 * 1024;
    auto mine = pattern(kChunk, 200 + c.rank());
    ASSERT_TRUE(f->write_at(c.rank() * kChunk, mine.data(), kChunk,
                            Datatype::byte())
                    .ok());
    c.barrier();
    const int prev = (c.rank() - 1 + c.size()) % c.size();
    std::vector<std::byte> theirs(kChunk);
    ASSERT_TRUE(
        f->read_at(prev * kChunk, theirs.data(), kChunk, Datatype::byte())
            .ok());
    auto expect = pattern(kChunk, 200 + prev);
    EXPECT_EQ(std::memcmp(theirs.data(), expect.data(), kChunk), 0);
    f->close();
  });
}

TEST_F(MpiioTest, IndividualPointerAndSeek) {
  world_->run([this](Comm& c) {
    Comm self = c.split(c.rank() == 0 ? 0 : 1, 0);  // split is collective
    if (c.rank() != 0) return;
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(self, ctx, "/ptr.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    std::vector<std::int32_t> v = {1, 2, 3, 4};
    ASSERT_TRUE(f->write(v.data(), 4, Datatype::int32()).ok());
    EXPECT_EQ(f->position(), 16u);  // byte etype
    ASSERT_EQ(f->seek(-8, Whence::kCur), Err::kOk);
    std::int32_t two = 0;
    ASSERT_TRUE(f->read(&two, 1, Datatype::int32()).ok());
    EXPECT_EQ(two, 3);
    ASSERT_EQ(f->seek(0, Whence::kEnd), Err::kOk);
    EXPECT_EQ(f->position(), 16u);
    ASSERT_EQ(f->seek(0, Whence::kSet), Err::kOk);
    std::int32_t one = 0;
    ASSERT_TRUE(f->read(&one, 1, Datatype::int32()).ok());
    EXPECT_EQ(one, 1);
    EXPECT_EQ(f->seek(-100, Whence::kCur), Err::kInval);
    f->close();
  });
}

// ---------------------------------------------------------------------------
// File views
// ---------------------------------------------------------------------------

TEST_F(MpiioTest, BlockViewPartitionsFile) {
  // Classic block decomposition: rank r sees bytes [r*B, (r+1)*B) of every
  // n*B tile via a subarray filetype.
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/view.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    constexpr std::uint32_t kBlock = 1000;
    const std::array<std::uint32_t, 1> sizes = {kBlock * kNp};
    const std::array<std::uint32_t, 1> subsizes = {kBlock};
    const std::array<std::uint32_t, 1> starts = {
        static_cast<std::uint32_t>(c.rank()) * kBlock};
    auto ft = Datatype::subarray(sizes, subsizes, starts, Datatype::byte());
    ASSERT_EQ(f->set_view(0, Datatype::byte(), ft), Err::kOk);

    // Each rank writes 2.5 tiles worth of its own marker bytes.
    std::vector<std::byte> mine(kBlock * 2 + kBlock / 2, std::byte(c.rank() + 1));
    ASSERT_TRUE(f->write_at(0, mine.data(), mine.size(), Datatype::byte()).ok());
    c.barrier();

    // Raw check: byte at absolute position t*kBlock*np + r*kBlock + i must
    // be r+1 for covered tiles.
    auto raw = ctx.session->open("/view.dat").value();
    std::vector<std::byte> all(kBlock * kNp * 3);
    ASSERT_TRUE(ctx.session->pread(raw, 0, all).ok());
    for (int r = 0; r < kNp; ++r) {
      // Tile 0 fully written by rank r.
      const std::size_t base = static_cast<std::size_t>(r) * kBlock;
      EXPECT_EQ(all[base], std::byte(r + 1));
      EXPECT_EQ(all[base + kBlock - 1], std::byte(r + 1));
      // Tile 2 only half written.
      const std::size_t t2 = 2u * kBlock * kNp + static_cast<std::size_t>(r) * kBlock;
      EXPECT_EQ(all[t2 + kBlock / 2 - 1], std::byte(r + 1));
    }
    // Read back through the view and compare.
    std::vector<std::byte> back(mine.size(), std::byte{0});
    ASSERT_TRUE(f->read_at(0, back.data(), back.size(), Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(mine.data(), back.data(), mine.size()), 0);
    f->close();
  });
}

TEST_F(MpiioTest, ViewWithEtypeOffsets) {
  world_->run([this](Comm& c) {
    Comm self = c.split(c.rank() == 0 ? 0 : 1, 0);  // split is collective
    if (c.rank() != 0) return;
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(self, ctx, "/etype.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    // etype = int32; filetype = 2 ints, every other slot. MPI extent of
    // vector(2,1,2) is ((2-1)*2+1)*4 = 12 bytes, so tiles repeat every 3
    // ints: visible int indices (after disp = int 2) are 2,4, 5,7, 8,10...
    auto ft = Datatype::vector(2, 1, 2, Datatype::int32());
    EXPECT_EQ(ft.extent(), 12);
    ASSERT_EQ(f->set_view(8, Datatype::int32(), ft), Err::kOk);
    std::vector<std::int32_t> v = {10, 20, 30, 40};
    // Offset 1 (in etypes) -> second visible int.
    ASSERT_TRUE(f->write_at(1, v.data(), 4, Datatype::int32()).ok());
    // byte_offset: view offset 0 -> disp 8; offset 1 -> disp+8 (skips one).
    EXPECT_EQ(f->byte_offset(0), 8u);
    EXPECT_EQ(f->byte_offset(1), 16u);

    auto raw = ctx.session->open("/etype.dat").value();
    std::vector<std::int32_t> all(12, -1);
    ASSERT_TRUE(ctx.session
                    ->pread(raw, 0,
                            std::span(reinterpret_cast<std::byte*>(all.data()),
                                      48))
                    .ok());
    // We wrote visible ints #1..#4 -> absolute int indices 4, 5, 7, 8.
    EXPECT_EQ(all[4], 10);
    EXPECT_EQ(all[5], 20);
    EXPECT_EQ(all[7], 30);
    EXPECT_EQ(all[8], 40);
    f->close();
  });
}

TEST_F(MpiioTest, SetViewRejectsBadTypes) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/badview.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    // filetype size not a multiple of etype size.
    auto ft = Datatype::contiguous(3, Datatype::byte());
    EXPECT_EQ(f->set_view(0, Datatype::int32(), ft), Err::kInval);
    f->close();
  });
}

// ---------------------------------------------------------------------------
// Noncontiguous independent access (sieving vs list I/O)
// ---------------------------------------------------------------------------

TEST_F(MpiioTest, StridedIndependentDafsUsesListIo) {
  world_->run([this](Comm& c) {
    Comm self = c.split(c.rank() == 0 ? 0 : 1, 0);  // split is collective
    if (c.rank() != 0) return;
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(self, ctx, "/strided.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    // View: 16 KiB of every 64 KiB.
    auto ft = Datatype::vector(1, 16 * 1024, 4, Datatype::contiguous(
                                                    1024, Datatype::byte()));
    // Simpler: hvector with byte child.
    ft = Datatype::hvector(1, 16 * 1024, 64 * 1024, Datatype::byte());
    ft = Datatype::resized(ft, 0, 64 * 1024);
    ASSERT_EQ(f->set_view(0, Datatype::byte(), ft), Err::kOk);
    auto data = pattern(8 * 16 * 1024, 7);
    ASSERT_TRUE(f->write_at(0, data.data(), data.size(), Datatype::byte()).ok());
    std::vector<std::byte> back(data.size());
    ASSERT_TRUE(f->read_at(0, back.data(), back.size(), Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
    // The DAFS driver should have used batched direct I/O.
    EXPECT_GT(fabric_->stats().get("dafs.direct_write_reqs"), 0u);
    EXPECT_EQ(fabric_->stats().get("mpiio.sieved_writes"), 0u);
    f->close();
  });
}

TEST_F(MpiioTest, StridedIndependentNfsSievesReads) {
  world_->run([this](Comm& c) {
    Comm self = c.split(c.rank() == 0 ? 0 : 1, 0);  // split is collective
    if (c.rank() != 0) return;
    auto client =
        nfs::Client::connect(*fabric_, world_->node_of(c.rank())).value();
    auto f = OpenNfs(self, *client, "/strided.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    // Populate contiguously first.
    auto data = pattern(512 * 1024, 8);
    ASSERT_TRUE(f->write_at(0, data.data(), data.size(), Datatype::byte()).ok());
    // Strided view: 4 KiB of every 16 KiB.
    auto ft = Datatype::hvector(1, 4 * 1024, 16 * 1024, Datatype::byte());
    ft = Datatype::resized(ft, 0, 16 * 1024);
    ASSERT_EQ(f->set_view(0, Datatype::byte(), ft), Err::kOk);
    std::vector<std::byte> got(32 * 4 * 1024);
    ASSERT_TRUE(f->read_at(0, got.data(), got.size(), Datatype::byte()).ok());
    for (int blk = 0; blk < 32; ++blk) {
      EXPECT_EQ(std::memcmp(got.data() + blk * 4096,
                            data.data() + blk * 16384, 4096),
                0)
          << blk;
    }
    EXPECT_GT(fabric_->stats().get("mpiio.sieved_reads"), 0u);
    f->close();
  });
}

TEST_F(MpiioTest, StridedWriteOnNfsFallsBackToListWrites) {
  // NFS has no locks, so sieving writes (RMW) must be avoided.
  world_->run([this](Comm& c) {
    Comm self = c.split(c.rank() == 0 ? 0 : 1, 0);  // split is collective
    if (c.rank() != 0) return;
    auto client =
        nfs::Client::connect(*fabric_, world_->node_of(c.rank())).value();
    auto f = OpenNfs(self, *client, "/nolock.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    auto base = pattern(64 * 1024, 9);
    ASSERT_TRUE(f->write_at(0, base.data(), base.size(), Datatype::byte()).ok());
    auto ft = Datatype::hvector(1, 512, 4096, Datatype::byte());
    ft = Datatype::resized(ft, 0, 4096);
    ASSERT_EQ(f->set_view(0, Datatype::byte(), ft), Err::kOk);
    std::vector<std::byte> marks(8 * 512, std::byte{0xAB});
    ASSERT_TRUE(f->write_at(0, marks.data(), marks.size(), Datatype::byte()).ok());
    EXPECT_EQ(fabric_->stats().get("mpiio.sieved_writes"), 0u);
    // Untouched gap bytes must be intact.
    ASSERT_EQ(f->set_view(0, Datatype::byte(), Datatype::byte()), Err::kOk);
    std::vector<std::byte> all(64 * 1024);
    ASSERT_TRUE(f->read_at(0, all.data(), all.size(), Datatype::byte()).ok());
    EXPECT_EQ(all[0], std::byte{0xAB});
    EXPECT_EQ(all[511], std::byte{0xAB});
    EXPECT_EQ(all[512], base[512]);
    EXPECT_EQ(all[4096], std::byte{0xAB});
    f->close();
  });
}

// ---------------------------------------------------------------------------
// Collective I/O
// ---------------------------------------------------------------------------

TEST_F(MpiioTest, CollectiveWriteReadBlockCyclic) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/coll.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    // Block-cyclic view: rank r owns block r of every np-block tile.
    constexpr std::uint32_t kBlock = 4096;
    const std::array<std::uint32_t, 1> sizes = {kBlock * kNp};
    const std::array<std::uint32_t, 1> subsizes = {kBlock};
    const std::array<std::uint32_t, 1> starts = {
        static_cast<std::uint32_t>(c.rank()) * kBlock};
    auto ft = Datatype::subarray(sizes, subsizes, starts, Datatype::byte());
    ASSERT_EQ(f->set_view(0, Datatype::byte(), ft), Err::kOk);

    constexpr int kTiles = 8;
    auto mine = pattern(kBlock * kTiles, 300 + c.rank());
    auto w = f->write_at_all(0, mine.data(), mine.size(), Datatype::byte());
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.value(), mine.size());
    EXPECT_GT(fabric_->stats().get("mpiio.twophase_writes"), 0u);

    std::vector<std::byte> back(mine.size(), std::byte{0});
    auto r = f->read_at_all(0, back.data(), back.size(), Datatype::byte());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(std::memcmp(mine.data(), back.data(), mine.size()), 0);
    EXPECT_GT(fabric_->stats().get("mpiio.twophase_reads"), 0u);

    // Cross-check a couple of absolute positions.
    c.barrier();
    if (c.rank() == 0) {
      auto raw = ctx.session->open("/coll.dat").value();
      std::vector<std::byte> probe(kBlock);
      // Tile 3, block of rank 2.
      ASSERT_TRUE(ctx.session
                      ->pread(raw, 3ull * kBlock * kNp + 2ull * kBlock, probe)
                      .ok());
      auto expect = pattern(kBlock * kTiles, 302);
      EXPECT_EQ(std::memcmp(probe.data(), expect.data() + 3 * kBlock, kBlock),
                0);
    }
    f->close();
  });
}

TEST_F(MpiioTest, CollectiveOnNfsBaselineWorks) {
  world_->run([this](Comm& c) {
    auto client =
        nfs::Client::connect(*fabric_, world_->node_of(c.rank())).value();
    auto f = OpenNfs(c, *client, "/collnfs.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    constexpr std::uint32_t kBlock = 2048;
    const std::array<std::uint32_t, 1> sizes = {kBlock * kNp};
    const std::array<std::uint32_t, 1> subsizes = {kBlock};
    const std::array<std::uint32_t, 1> starts = {
        static_cast<std::uint32_t>(c.rank()) * kBlock};
    auto ft = Datatype::subarray(sizes, subsizes, starts, Datatype::byte());
    ASSERT_EQ(f->set_view(0, Datatype::byte(), ft), Err::kOk);
    auto mine = pattern(kBlock * 4, 400 + c.rank());
    ASSERT_TRUE(
        f->write_at_all(0, mine.data(), mine.size(), Datatype::byte()).ok());
    std::vector<std::byte> back(mine.size());
    ASSERT_TRUE(
        f->read_at_all(0, back.data(), back.size(), Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(mine.data(), back.data(), mine.size()), 0);
    f->close();
  });
}

TEST_F(MpiioTest, CollectiveDisabledFallsBackToIndependent) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    Info info;
    info.set("romio_cb_write", "disable");
    info.set("romio_cb_read", "disable");
    auto f = OpenDafs(c, ctx, "/nocb.dat", kModeCreate | kModeRdwr, info);
    ASSERT_NE(f, nullptr);
    constexpr std::uint32_t kBlock = 8192;
    auto mine = pattern(kBlock, 500 + c.rank());
    ASSERT_TRUE(f->write_at_all(c.rank() * kBlock, mine.data(), kBlock,
                                Datatype::byte())
                    .ok());
    EXPECT_EQ(fabric_->stats().get("mpiio.twophase_writes"), 0u);
    std::vector<std::byte> back(kBlock);
    ASSERT_TRUE(f->read_at_all(c.rank() * kBlock, back.data(), kBlock,
                               Datatype::byte())
                    .ok());
    EXPECT_EQ(std::memcmp(mine.data(), back.data(), kBlock), 0);
    f->close();
  });
}

TEST_F(MpiioTest, CollectiveWithFewerAggregators) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    Info info;
    info.set("cb_nodes", std::uint64_t{2});
    info.set("cb_buffer_size", std::uint64_t{64 * 1024});
    auto f = OpenDafs(c, ctx, "/aggr2.dat", kModeCreate | kModeRdwr, info);
    ASSERT_NE(f, nullptr);
    constexpr std::uint32_t kBlock = 16 * 1024;
    const std::array<std::uint32_t, 1> sizes = {kBlock * kNp};
    const std::array<std::uint32_t, 1> subsizes = {kBlock};
    const std::array<std::uint32_t, 1> starts = {
        static_cast<std::uint32_t>(c.rank()) * kBlock};
    auto ft = Datatype::subarray(sizes, subsizes, starts, Datatype::byte());
    ASSERT_EQ(f->set_view(0, Datatype::byte(), ft), Err::kOk);
    auto mine = pattern(kBlock * 4, 600 + c.rank());
    ASSERT_TRUE(
        f->write_at_all(0, mine.data(), mine.size(), Datatype::byte()).ok());
    std::vector<std::byte> back(mine.size());
    ASSERT_TRUE(
        f->read_at_all(0, back.data(), back.size(), Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(mine.data(), back.data(), mine.size()), 0);
    f->close();
  });
}

TEST_F(MpiioTest, CollectiveWithZeroDataRanks) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/zero.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    // Only even ranks contribute.
    std::vector<std::byte> mine(c.rank() % 2 == 0 ? 8192 : 0,
                                std::byte(c.rank()));
    auto w = f->write_at_all(c.rank() * 8192ull, mine.data(), mine.size(),
                             Datatype::byte());
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.value(), mine.size());
    c.barrier();
    std::vector<std::byte> probe(1);
    ASSERT_TRUE(f->read_at(2 * 8192, probe.data(), 1, Datatype::byte()).ok());
    EXPECT_EQ(probe[0], std::byte(2));
    f->close();
  });
}

// ---------------------------------------------------------------------------
// Shared file pointers
// ---------------------------------------------------------------------------

TEST_F(MpiioTest, WriteSharedProducesDisjointRecords) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/log.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    constexpr std::uint64_t kRec = 512;
    std::vector<std::byte> rec(kRec, std::byte(c.rank() + 1));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(f->write_shared(rec.data(), kRec, Datatype::byte()).ok());
    }
    c.barrier();
    EXPECT_EQ(f->get_size().value(), kRec * 3 * kNp);
    // Every record is homogeneous (no interleaving within a record).
    if (c.rank() == 0) {
      std::vector<std::byte> all(kRec * 3 * kNp);
      ASSERT_TRUE(f->read_at(0, all.data(), all.size(), Datatype::byte()).ok());
      std::vector<int> counts(kNp + 2, 0);
      for (std::uint64_t r = 0; r < 3 * kNp; ++r) {
        const std::byte v = all[r * kRec];
        for (std::uint64_t i = 0; i < kRec; ++i) {
          ASSERT_EQ(all[r * kRec + i], v) << "record " << r;
        }
        ++counts[static_cast<int>(v)];
      }
      for (int r = 1; r <= kNp; ++r) EXPECT_EQ(counts[r], 3);
    }
    f->close();
  });
}

TEST_F(MpiioTest, WriteOrderedLaysOutByRank) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/ordered.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    // Rank r writes r+1 bytes of value r+1; layout must be rank order.
    std::vector<std::byte> rec(static_cast<std::size_t>(c.rank()) + 1,
                               std::byte(c.rank() + 1));
    ASSERT_TRUE(f->write_ordered(rec.data(), rec.size(), Datatype::byte()).ok());
    // Second round appends after the first.
    ASSERT_TRUE(f->write_ordered(rec.data(), rec.size(), Datatype::byte()).ok());
    c.barrier();
    if (c.rank() == 0) {
      const std::uint64_t round = 1 + 2 + 3 + 4;
      std::vector<std::byte> all(2 * round);
      ASSERT_TRUE(f->read_at(0, all.data(), all.size(), Datatype::byte()).ok());
      const char expect[] = {1, 2, 2, 3, 3, 3, 4, 4, 4, 4,
                             1, 2, 2, 3, 3, 3, 4, 4, 4, 4};
      for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i], static_cast<std::byte>(expect[i])) << i;
      }
    }
    f->close();
  });
}

TEST_F(MpiioTest, ReadOrderedConsumesInRankOrder) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/rord.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    if (c.rank() == 0) {
      std::vector<std::int32_t> v(kNp);
      std::iota(v.begin(), v.end(), 1000);
      ASSERT_TRUE(f->write_at(0, v.data(), kNp, Datatype::int32()).ok());
    }
    c.barrier();
    ASSERT_EQ(f->seek_shared(0, Whence::kSet), Err::kOk);
    std::int32_t mine = 0;
    ASSERT_TRUE(f->read_ordered(&mine, 1, Datatype::int32()).ok());
    EXPECT_EQ(mine, 1000 + c.rank());
    f->close();
  });
}

TEST_F(MpiioTest, SharedPointerUnsupportedOnNfs) {
  world_->run([this](Comm& c) {
    auto client =
        nfs::Client::connect(*fabric_, world_->node_of(c.rank())).value();
    auto f = OpenNfs(c, *client, "/sfp.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    std::byte b{1};
    EXPECT_EQ(f->write_shared(&b, 1, Datatype::byte()).error(), Err::kInval);
    f->close();
  });
}

// ---------------------------------------------------------------------------
// Nonblocking
// ---------------------------------------------------------------------------

TEST_F(MpiioTest, NonblockingWriteReadOverlap) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/nb.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    constexpr std::uint64_t kChunk = 128 * 1024;
    auto d0 = pattern(kChunk, 700 + c.rank());
    auto d1 = pattern(kChunk, 800 + c.rank());
    const std::uint64_t base = c.rank() * 2 * kChunk;
    auto r0 = f->iwrite_at(base, d0.data(), kChunk, Datatype::byte());
    auto r1 = f->iwrite_at(base + kChunk, d1.data(), kChunk, Datatype::byte());
    ASSERT_TRUE(r0.ok());
    ASSERT_TRUE(r1.ok());
    std::uint64_t b0 = 0, b1 = 0;
    EXPECT_EQ(f->wait(r0.value(), &b0), Err::kOk);
    EXPECT_EQ(f->wait(r1.value(), &b1), Err::kOk);
    EXPECT_EQ(b0, kChunk);
    EXPECT_EQ(b1, kChunk);
    std::vector<std::byte> back(2 * kChunk);
    auto rr = f->iread_at(base, back.data(), 2 * kChunk, Datatype::byte());
    ASSERT_TRUE(rr.ok());
    EXPECT_EQ(f->wait(rr.value()), Err::kOk);
    EXPECT_EQ(std::memcmp(back.data(), d0.data(), kChunk), 0);
    EXPECT_EQ(std::memcmp(back.data() + kChunk, d1.data(), kChunk), 0);
    f->close();
  });
}

// ---------------------------------------------------------------------------
// Size management / atomicity
// ---------------------------------------------------------------------------

TEST_F(MpiioTest, SetSizePreallocateGetSize) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/size.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    // MPI consistency: a barrier separates each size check from the next
    // mutation, otherwise a fast rank's next set_size races slow readers.
    ASSERT_EQ(f->set_size(1 << 20), Err::kOk);
    EXPECT_EQ(f->get_size().value(), 1u << 20);
    c.barrier();
    ASSERT_EQ(f->preallocate(512 * 1024), Err::kOk);  // no shrink
    EXPECT_EQ(f->get_size().value(), 1u << 20);
    c.barrier();
    ASSERT_EQ(f->preallocate(2 << 20), Err::kOk);
    EXPECT_EQ(f->get_size().value(), 2u << 20);
    c.barrier();
    ASSERT_EQ(f->set_size(100), Err::kOk);
    EXPECT_EQ(f->get_size().value(), 100u);
    f->close();
  });
}

TEST_F(MpiioTest, AtomicModeSupportedOnlyWithLocks) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto fd = OpenDafs(c, ctx, "/atomic.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(fd, nullptr);
    EXPECT_EQ(fd->set_atomicity(true), Err::kOk);
    EXPECT_TRUE(fd->atomicity());
    // Atomic writes still work.
    auto data = pattern(64 * 1024, 900 + c.rank());
    ASSERT_TRUE(fd->write_at(c.rank() * 64 * 1024ull, data.data(), data.size(),
                             Datatype::byte())
                    .ok());
    fd->close();

    auto client =
        nfs::Client::connect(*fabric_, world_->node_of(c.rank())).value();
    auto fn = OpenNfs(c, *client, "/atomicnfs.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->set_atomicity(true), Err::kInval);
    fn->close();
  });
}

TEST_F(MpiioTest, ReadPastEofIsShort) {
  world_->run([this](Comm& c) {
    Comm self = c.split(c.rank() == 0 ? 0 : 1, 0);  // split is collective
    if (c.rank() != 0) return;
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(self, ctx, "/eof.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    auto data = pattern(1000, 11);
    ASSERT_TRUE(f->write_at(0, data.data(), data.size(), Datatype::byte()).ok());
    std::vector<std::byte> big(100'000);
    auto r = f->read_at(0, big.data(), big.size(), Datatype::byte());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 1000u);
    f->close();
  });
}


TEST_F(MpiioTest, ListReadStopsAtFirstShortBatch) {
  // A strided read past EOF that spans more than one DAFS batch (400 segs
  // per request): the first batch comes back short, and the driver must not
  // issue the second, all-past-EOF batch.
  world_->run([this](Comm& c) {
    Comm self = c.split(c.rank() == 0 ? 0 : 1, 0);  // split is collective
    if (c.rank() != 0) return;
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(self, ctx, "/batch.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    auto data = pattern(1000, 17);
    ASSERT_TRUE(
        f->write_at(0, data.data(), data.size(), Datatype::byte()).ok());
    // 16 B of every 32 B -> 500 segments, split 400 + 100; EOF at 1000
    // falls inside the first batch.
    auto ft = Datatype::resized(
        Datatype::hvector(1, 16, 32, Datatype::byte()), 0, 32);
    ASSERT_EQ(f->set_view(0, Datatype::byte(), ft), Err::kOk);
    const std::uint64_t reqs_before =
        fabric_->stats().get("dafs.direct_read_reqs");
    std::vector<std::byte> out(500 * 16, std::byte{0});
    auto r = f->read_at(0, out.data(), out.size(), Datatype::byte());
    ASSERT_TRUE(r.ok());
    std::uint64_t expect = 0;  // stride bytes that lie before EOF
    for (std::uint64_t k = 0; k < 500 && k * 32 < 1000; ++k) {
      expect += std::min<std::uint64_t>(16, 1000 - k * 32);
    }
    EXPECT_EQ(r.value(), expect);
    EXPECT_EQ(fabric_->stats().get("dafs.direct_read_reqs") - reqs_before, 1u);
    // The bytes that do exist arrive intact.
    EXPECT_EQ(std::memcmp(out.data(), data.data(), 16), 0);
    EXPECT_EQ(std::memcmp(out.data() + 16, data.data() + 32, 16), 0);
    f->close();
  });
}

TEST_F(MpiioTest, CollectiveWritePopulatesPhaseHistograms) {
  // The cross-layer tracing tentpole: one collective write/read must leave
  // samples in the VIA, DAFS and MPI-IO phase histograms.
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/hist.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    constexpr std::uint32_t kBlock = 4096;
    const std::array<std::uint32_t, 1> sizes = {kBlock * kNp};
    const std::array<std::uint32_t, 1> subsizes = {kBlock};
    const std::array<std::uint32_t, 1> starts = {
        static_cast<std::uint32_t>(c.rank()) * kBlock};
    auto ft = Datatype::subarray(sizes, subsizes, starts, Datatype::byte());
    ASSERT_EQ(f->set_view(0, Datatype::byte(), ft), Err::kOk);
    auto mine = pattern(kBlock * 8, 400 + c.rank());
    ASSERT_TRUE(
        f->write_at_all(0, mine.data(), mine.size(), Datatype::byte()).ok());
    std::vector<std::byte> back(mine.size());
    ASSERT_TRUE(
        f->read_at_all(0, back.data(), back.size(), Datatype::byte()).ok());
    c.barrier();
    if (c.rank() == 0) {
      const auto snaps = fabric_->histograms().snapshot_all();
      for (const char* key :
           {"mpiio.write_at_all_ns", "mpiio.read_at_all_ns",
            "mpiio.twophase_meta_ns", "mpiio.twophase_exchange_ns",
            "mpiio.twophase_disk_ns", "via.send_latency_ns",
            "via.doorbell_to_reap_ns"}) {
        auto it = snaps.find(key);
        ASSERT_NE(it, snaps.end()) << key;
        EXPECT_GT(it->second.count, 0u) << key;
        EXPECT_GT(it->second.sum, 0u) << key;
      }
      // Per-procedure DAFS RTTs: the collective surely did direct writes.
      EXPECT_EQ(snaps.count("dafs.rtt_ns.write_direct"), 1u);
    }
    f->close();
  });
}

TEST_F(MpiioTest, PositionSharedTracksSharedPointer) {
  world_->run([this](Comm& c) {
    DafsCtx ctx(*fabric_, world_->node_of(c.rank()));
    auto f = OpenDafs(c, ctx, "/pos.dat", kModeCreate | kModeRdwr);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->position_shared().value(), 0u);
    c.barrier();
    std::vector<std::byte> rec(100, std::byte(c.rank()));
    ASSERT_TRUE(f->write_shared(rec.data(), rec.size(), Datatype::byte()).ok());
    c.barrier();
    EXPECT_EQ(f->position_shared().value(),
              100u * static_cast<std::uint64_t>(c.size()));
    EXPECT_EQ(f->amode() & kModeRdwr, kModeRdwr);
    EXPECT_EQ(f->path(), "/pos.dat");
    f->close();
  });
}

}  // namespace
