#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "mpiio/ad_dafs.hpp"
#include "mpiio/file.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"

/// \file test_stripe.cpp
/// Striped multi-filer suite (ctest label `stripe`): a dafs::Client mounts N
/// single filers as one namespace, round-robining file data across them in
/// stripe_size units while metadata stays on filer 0. Covers byte-exact
/// read-back across stripe boundaries, hole zero-fill and short reads at
/// EOF, a striped 4-rank MPI-IO collective, and an 8-seed sweep that kills a
/// data server mid-transfer and expects the client to ride out the outage.

namespace {

using dafs::PStatus;
using mpi::Comm;
using mpi::Datatype;
using mpiio::Err;
using mpiio::File;
using mpiio::Info;
using sim::Actor;
using sim::ActorScope;

constexpr std::uint64_t kChunk = 32 * 1024;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

/// N independent filers "dafs0".."dafsN-1", each on its own node of one
/// fabric. Filer 0 doubles as the metadata server of every striped mount.
struct StripedFilers {
  std::vector<sim::NodeId> nodes;
  std::vector<std::unique_ptr<dafs::Server>> servers;
  std::vector<std::string> services;

  StripedFilers(sim::Fabric& fabric, int n, dafs::ServerConfig base = {}) {
    for (int i = 0; i < n; ++i) {
      services.push_back("dafs" + std::to_string(i));
      nodes.push_back(fabric.add_node("filer" + std::to_string(i)));
      dafs::ServerConfig cfg = base;
      cfg.service = services.back();
      servers.push_back(
          std::make_unique<dafs::Server>(fabric, nodes.back(), cfg));
      servers.back()->start();
    }
  }

  ~StripedFilers() {
    for (auto& s : servers) s->stop();
  }
};

/// A striped mount over all of `f`'s filers, with test-speed backoffs and a
/// per-rank jitter stream.
dafs::MountSpec striped_cfg(const StripedFilers& f, std::uint64_t stripe_size,
                            std::uint64_t seed, int rank) {
  dafs::RetryPolicy retry;
  retry.backoff_ns = 20'000;
  retry.backoff_cap_ns = 2'000'000;
  retry.jitter_seed = seed * 131 + static_cast<std::uint64_t>(rank);
  return dafs::striped_mount(f.services, stripe_size, retry);
}

void wait_restart(dafs::Server& server) {
  while (server.crashed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------------
// Byte-exact read-back across stripe boundaries
// ---------------------------------------------------------------------------

TEST(Stripe, ByteExactReadbackAcrossBoundaries) {
  constexpr std::uint64_t kStripe = 8 * 1024;
  sim::Fabric fabric;
  StripedFilers filers(fabric, 3);
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto c = std::move(
      dafs::Client::connect(nic, striped_cfg(filers, kStripe, 1, 0)).value());
  EXPECT_EQ(c->data_servers(), 3u);
  EXPECT_EQ(c->stripe_size(), kStripe);

  auto fh = c->open("/s.dat", dafs::kOpenCreate).value();
  // Every data server opened its subfile at open time.
  EXPECT_GE(fabric.stats().get("dafs.data_opens"), 3u);

  // A big write at an unaligned offset: spans ~12 stripes, so every server
  // holds several, and both ends of the extent sit mid-stripe.
  const std::uint64_t off = 3'000;
  const auto data = pattern(100'000, 7);
  auto w = c->pwrite(fh, off, data);
  ASSERT_TRUE(w.ok()) << dafs::to_string(w.error());
  EXPECT_EQ(w.value(), data.size());

  auto attrs = c->getattr(fh);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs.value().size, off + data.size())
      << "logical size is the max over the subfiles";

  // Contiguous read-back of the exact extent.
  std::vector<std::byte> back(data.size());
  auto r = c->pread(fh, off, back);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value(), back.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);

  // List read with pieces straddling stripe boundaries at odd offsets: each
  // piece covers [b - 100, b + 100) around a boundary b.
  for (std::uint64_t b = kStripe; b + 100 <= off + data.size();
       b += 3 * kStripe) {
    if (b < off + 100) continue;
    std::vector<std::byte> piece(200);
    dafs::IoVec iov{b - 100, piece.data(), piece.size()};
    auto br = c->read_batch(fh, std::span(&iov, 1));
    ASSERT_TRUE(br.ok());
    ASSERT_EQ(br.value(), piece.size());
    EXPECT_EQ(std::memcmp(piece.data(), data.data() + (b - 100 - off),
                          piece.size()),
              0)
        << "boundary " << b;
  }

  // Unaligned list *write* (3 pieces, two crossing boundaries), then verify
  // the whole extent again.
  auto patch = pattern(3 * 512, 99);
  std::vector<std::byte> expect = data;
  std::vector<dafs::IoVec> iovs;
  const std::uint64_t spots[3] = {kStripe - 256, 4 * kStripe - 256,
                                  7 * kStripe + 777};
  for (int i = 0; i < 3; ++i) {
    iovs.push_back(dafs::IoVec{off + spots[i], patch.data() + i * 512, 512});
    std::memcpy(expect.data() + spots[i], patch.data() + i * 512, 512);
  }
  auto bw = c->write_batch(fh, iovs);
  ASSERT_TRUE(bw.ok());
  EXPECT_EQ(bw.value(), 3u * 512u);
  ASSERT_TRUE(c->pread(fh, off, back).ok());
  EXPECT_EQ(std::memcmp(back.data(), expect.data(), back.size()), 0);

  ASSERT_EQ(c->sync(fh), PStatus::kOk);
  ASSERT_EQ(c->close(fh), PStatus::kOk);
  c.reset();
}

// ---------------------------------------------------------------------------
// Holes read as zeros; reads stop short at the striped EOF
// ---------------------------------------------------------------------------

TEST(Stripe, HolesAndShortReadsAtEof) {
  constexpr std::uint64_t kStripe = 8 * 1024;
  sim::Fabric fabric;
  StripedFilers filers(fabric, 3);
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto c = std::move(
      dafs::Client::connect(nic, striped_cfg(filers, kStripe, 2, 0)).value());

  auto fh = c->open("/holes.dat", dafs::kOpenCreate).value();
  // Two islands with a hole between them. The islands land on different
  // servers, so the hole spans subfiles that never saw a write.
  const auto head = pattern(5'000, 11);
  const auto tail = pattern(5'000, 12);
  ASSERT_TRUE(c->pwrite(fh, 0, head).ok());
  ASSERT_TRUE(c->pwrite(fh, 50'000, tail).ok());
  auto attrs = c->getattr(fh);
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs.value().size, 55'000u);

  // Read past EOF: the merge clamps at the logical size, zero-fills the
  // hole, and returns a short count.
  std::vector<std::byte> buf(60'000, std::byte{0xee});
  auto r = c->pread(fh, 0, buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 55'000u) << "short read at striped EOF";
  EXPECT_EQ(std::memcmp(buf.data(), head.data(), head.size()), 0);
  for (std::size_t i = 5'000; i < 50'000; ++i) {
    ASSERT_EQ(buf[i], std::byte{0}) << "hole byte " << i;
  }
  EXPECT_EQ(std::memcmp(buf.data() + 50'000, tail.data(), tail.size()), 0);

  // A read wholly past EOF transfers nothing.
  auto past = c->pread(fh, 100'000, buf);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past.value(), 0u);

  // An unaligned read straddling EOF: only the in-file prefix counts.
  std::vector<std::byte> straddle(2'000, std::byte{0xee});
  auto sr = c->pread(fh, 54'000, straddle);
  ASSERT_TRUE(sr.ok());
  EXPECT_EQ(sr.value(), 1'000u);
  EXPECT_EQ(std::memcmp(straddle.data(), tail.data() + 4'000, 1'000), 0);

  ASSERT_EQ(c->close(fh), PStatus::kOk);
  c.reset();
}

// ---------------------------------------------------------------------------
// Async striped I/O and the degenerate single-server mount
// ---------------------------------------------------------------------------

TEST(Stripe, AsyncSubmitWaitAndSingleServerDegenerates) {
  constexpr std::uint64_t kStripe = 4 * 1024;
  sim::Fabric fabric;
  StripedFilers filers(fabric, 2);
  const auto node = fabric.add_node("client");
  Actor actor("client", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "nic");
  auto c = std::move(
      dafs::Client::connect(nic, striped_cfg(filers, kStripe, 3, 0)).value());

  auto fh = c->open("/async.dat", dafs::kOpenCreate).value();
  const auto a = pattern(20'000, 21);
  const auto b = pattern(20'000, 22);
  auto wa = c->submit_pwrite(fh, 0, a);
  auto wb = c->submit_pwrite(fh, 40'000, b);
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  const dafs::OpId ops[2] = {wa.value(), wb.value()};
  ASSERT_EQ(c->wait_all(ops), PStatus::kOk);

  std::vector<std::byte> back(20'000);
  auto rd = c->submit_pread(fh, 40'000, back);
  ASSERT_TRUE(rd.ok());
  std::uint64_t got = 0;
  ASSERT_EQ(c->wait(rd.value(), &got), PStatus::kOk);
  EXPECT_EQ(got, back.size());
  EXPECT_EQ(std::memcmp(back.data(), b.data(), back.size()), 0);
  ASSERT_EQ(c->close(fh), PStatus::kOk);
  c.reset();

  // One service in the mount: the Client degenerates to a plain session and
  // reports no striping (the collective layer then skips alignment).
  auto single = std::move(
      dafs::Client::connect(
          nic, dafs::striped_mount({filers.services[0]}, kStripe))
          .value());
  EXPECT_EQ(single->data_servers(), 1u);
  auto sfh = single->open("/single.dat", dafs::kOpenCreate).value();
  ASSERT_TRUE(single->pwrite(sfh, 0, a).ok());
  std::vector<std::byte> sback(a.size());
  ASSERT_TRUE(single->pread(sfh, 0, sback).ok());
  EXPECT_EQ(std::memcmp(sback.data(), a.data(), sback.size()), 0);
  single.reset();
}

// ---------------------------------------------------------------------------
// Striped MPI-IO collective: 4 ranks, stripe-aligned file domains
// ---------------------------------------------------------------------------

TEST(Stripe, CollectiveWriteReadbackOverStripedClient) {
  constexpr std::uint64_t kStripe = 16 * 1024;
  constexpr int kRanks = 4;
  sim::Fabric fabric;
  StripedFilers filers(fabric, 4);

  mpi::WorldConfig wcfg;
  wcfg.nprocs = kRanks;
  wcfg.fabric = &fabric;
  wcfg.name = "stripe";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto client = std::move(
        dafs::Client::connect(nic, striped_cfg(filers, kStripe, 4, c.rank()))
            .value());
    auto f = std::move(File::open(c, "/coll.dat",
                                  mpiio::kModeCreate | mpiio::kModeRdwr,
                                  Info{}, mpiio::dafs_driver(*client))
                           .value());

    // Interleaved unaligned blocks: rank r writes kChunk at r*kChunk + 512,
    // so two-phase aggregation has real exchange work and the stripe-aligned
    // domains get exercised off the aligned fast path.
    const std::uint64_t off = c.rank() * kChunk + 512;
    const auto data = pattern(kChunk, 4000 + c.rank());
    ASSERT_TRUE(
        f->write_at_all(off, data.data(), kChunk, Datatype::byte()).ok());
    ASSERT_EQ(f->sync(), Err::kOk);
    c.barrier();

    std::vector<std::byte> back(kChunk);
    ASSERT_TRUE(
        f->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), data.data(), kChunk), 0)
        << "rank " << c.rank();
    f->close();
  });

  // The stripes really spread: every data filer admitted write traffic.
  EXPECT_GE(fabric.stats().get("dafs.data_opens"),
            static_cast<std::uint64_t>(kRanks) * 4u);

  // Cross-check the whole file through a fresh striped mount.
  const auto node = fabric.add_node("verify");
  Actor actor("verify", &fabric.node(node));
  ActorScope scope(actor);
  via::Nic nic(fabric, node, "vnic");
  auto v = std::move(
      dafs::Client::connect(nic, striped_cfg(filers, kStripe, 4, 99)).value());
  auto fh = v->open("/coll.dat").value();
  std::vector<std::byte> all(kRanks * kChunk + 512);
  auto rd = v->pread(fh, 0, all);
  ASSERT_TRUE(rd.ok());
  ASSERT_EQ(rd.value(), all.size());
  for (int r = 0; r < kRanks; ++r) {
    const auto expect = pattern(kChunk, 4000 + r);
    EXPECT_EQ(std::memcmp(all.data() + r * kChunk + 512, expect.data(), kChunk),
              0)
        << "rank " << r;
  }
  v.reset();
}

// ---------------------------------------------------------------------------
// The capstone: seeded data-server-crash-mid-transfer sweep
// ---------------------------------------------------------------------------

/// One seed: a 4-rank world writes a durable striped baseline, then the
/// crash schedule kills data server 1 (never the metadata filer) a handful
/// of admitted requests into the next collective. Data mounts are
/// single-endpoint, so the only way through is to ride out the outage:
/// sessions reconnect to the restarted filer, reclaim, and finish. Synced
/// baseline bytes must come back byte-exact afterwards.
void run_stripe_world(std::uint64_t seed) {
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr std::uint64_t kStripe = 8 * 1024;
  constexpr int kRanks = 4;

  sim::Fabric fabric;
  dafs::ServerConfig scfg;
  scfg.grace_period_ms = 10;
  StripedFilers filers(fabric, 3, scfg);

  mpi::WorldConfig wcfg;
  wcfg.nprocs = kRanks;
  wcfg.fabric = &fabric;
  wcfg.name = "stripe-fault";
  mpi::World world(wcfg);
  world.run([&](Comm& c) {
    via::Nic nic(fabric, world.node_of(c.rank()), "cli");
    auto client = std::move(
        dafs::Client::connect(nic, striped_cfg(filers, kStripe, seed, c.rank()))
            .value());
    auto fa = std::move(File::open(c, "/a.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*client))
                            .value());
    auto fb = std::move(File::open(c, "/b.dat",
                                   mpiio::kModeCreate | mpiio::kModeRdwr,
                                   Info{}, mpiio::dafs_driver(*client))
                            .value());
    auto poll_fh = client->open("/a.dat").value();

    // Phase 1 (healthy): durable striped baseline.
    const std::uint64_t off = c.rank() * kChunk;
    const auto da = pattern(kChunk, 5000 + seed * 10 + c.rank());
    ASSERT_TRUE(
        fa->write_at_all(off, da.data(), kChunk, Datatype::byte()).ok());
    ASSERT_EQ(fa->sync(), Err::kOk);
    c.barrier();

    // Arm: kill data server 1 — and only it — a few admitted requests into
    // phase 2, restarting 60 ms later. Odd seeds also delay transfers on
    // its connections to vary where inside a striped batch the crash lands.
    if (c.rank() == 0) {
      auto& plan = fabric.faults();
      plan.arm(seed);
      plan.restrict_crash_to_node(filers.nodes[1]);
      plan.crash_server_after_requests(2 + seed * 3,
                                       /*restart_delay_ms=*/60);
      if (seed % 2 == 1) {
        plan.restrict_to_conn(filers.services[1]);
        plan.set_delay(0.2, 30'000);
      }
    }
    c.barrier();

    // Phase 2 (crash lands here): striped collective writes. Recovery is
    // transparent — each retry rides the data session's reconnect loop.
    const auto db = pattern(kChunk, 6000 + seed * 10 + c.rank());
    bool ok = false;
    for (int t = 0; t < 8 && !ok; ++t) {
      ok = fb->write_at_all(off, db.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "collective write across data-server crash, seed "
                    << seed;
    c.barrier();

    // Make sure the armed crash actually fired, then wait out the restart.
    if (c.rank() == 0) {
      int guard = 0;
      while (fabric.stats().get("dafs.server_crashes") == 0 && guard++ < 500) {
        (void)client->getattr(poll_fh);
      }
      EXPECT_GE(fabric.stats().get("dafs.server_crashes"), 1u)
          << "seed " << seed;
      wait_restart(*filers.servers[1]);
      fabric.faults().clear();
    }
    c.barrier();

    // Phase 3 (healthy again): rewrite /b.dat clean and sync — acked but
    // un-synced phase-2 stripes legally died with the server — then verify
    // the synced baseline never moved.
    ok = false;
    for (int t = 0; t < 8 && !ok; ++t) {
      ok = fb->write_at_all(off, db.data(), kChunk, Datatype::byte()).ok();
    }
    ASSERT_TRUE(ok) << "clean rewrite, seed " << seed;
    ASSERT_EQ(fb->sync(), Err::kOk);

    std::vector<std::byte> back(kChunk);
    ASSERT_TRUE(
        fa->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), da.data(), kChunk), 0)
        << "synced striped baseline, seed " << seed;
    ASSERT_TRUE(
        fb->read_at_all(off, back.data(), kChunk, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), db.data(), kChunk), 0);

    fa->close();
    fb->close();
  });

  EXPECT_GE(fabric.stats().get("dafs.server_crashes"), 1u) << "seed " << seed;

  // Byte-exact verify of both striped files through a pristine mount.
  {
    const auto node = fabric.add_node("verify");
    Actor actor("verify", &fabric.node(node));
    ActorScope scope(actor);
    via::Nic nic(fabric, node, "vnic");
    auto v = std::move(
        dafs::Client::connect(nic, striped_cfg(filers, kStripe, seed, 99))
            .value());
    for (const char* path : {"/a.dat", "/b.dat"}) {
      auto fh = v->open(path).value();
      const std::uint64_t base =
          std::string_view(path) == "/a.dat" ? 5000 : 6000;
      std::vector<std::byte> all(kRanks * kChunk);
      auto rd = v->pread(fh, 0, all);
      EXPECT_TRUE(rd.ok()) << path << " seed " << seed;
      if (!rd.ok()) continue;
      for (int r = 0; r < kRanks; ++r) {
        const auto expect = pattern(kChunk, base + seed * 10 + r);
        EXPECT_EQ(
            std::memcmp(all.data() + r * kChunk, expect.data(), kChunk), 0)
            << path << " rank " << r << " seed " << seed;
      }
    }
    v.reset();
  }

  EXPECT_LT(std::chrono::steady_clock::now() - wall_start,
            std::chrono::seconds(60))
      << "seed " << seed;
}

TEST(Stripe, SeededDataServerCrashSweep) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) run_stripe_world(seed);
}

}  // namespace
