// Unit tests for the portable MPI-IO layer in isolation: a FakeDriver backed
// by a plain byte vector lets us observe exactly which device operations the
// portable code issues (sieving windows, list fan-out, lock usage) without
// any transport underneath.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"
#include "mpiio/info.hpp"
#include "sim/rng.hpp"

namespace {

using mpi::Comm;
using mpi::Datatype;
using mpiio::AdioDriver;
using mpiio::AioHandle;
using mpiio::Err;
using mpiio::File;
using mpiio::Info;
using mpiio::IoSeg;
template <typename T>
using Result = mpiio::Result<T>;

/// In-memory ADIO device that counts operations.
class FakeDriver final : public AdioDriver {
 public:
  struct Counters {
    int preads = 0;
    int pwrites = 0;
    int locks = 0;
    int unlocks = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
  };

  explicit FakeDriver(bool with_locks = true, Counters* counters = nullptr)
      : with_locks_(with_locks), counters_(counters) {}

  Err open(const std::string& path, std::uint16_t flags) override {
    path_ = path;
    if (flags & dafs::kOpenTrunc) data_.clear();
    (void)flags;
    return Err::kOk;
  }
  Err close() override { return Err::kOk; }
  Err remove(const std::string&) override {
    data_.clear();
    return Err::kOk;
  }

  Result<std::uint64_t> pread(std::uint64_t off,
                              std::span<std::byte> out) override {
    if (counters_) {
      ++counters_->preads;
      counters_->bytes_read += out.size();
    }
    if (off >= data_.size()) return std::uint64_t{0};
    const std::uint64_t n =
        std::min<std::uint64_t>(out.size(), data_.size() - off);
    std::memcpy(out.data(), data_.data() + off, n);
    return n;
  }

  Result<std::uint64_t> pwrite(std::uint64_t off,
                               std::span<const std::byte> in) override {
    if (counters_) {
      ++counters_->pwrites;
      counters_->bytes_written += in.size();
    }
    if (data_.size() < off + in.size()) data_.resize(off + in.size());
    std::memcpy(data_.data() + off, in.data(), in.size());
    return std::uint64_t{in.size()};
  }

  Result<std::uint64_t> size() override {
    return std::uint64_t{data_.size()};
  }
  Err set_size(std::uint64_t size) override {
    data_.resize(size);
    return Err::kOk;
  }
  Err sync() override { return Err::kOk; }

  Err lock(std::uint64_t, std::uint64_t, bool) override {
    if (!with_locks_) return Err::kInval;
    if (counters_) ++counters_->locks;
    return Err::kOk;
  }
  Err unlock(std::uint64_t, std::uint64_t) override {
    if (!with_locks_) return Err::kInval;
    if (counters_) ++counters_->unlocks;
    return Err::kOk;
  }
  bool supports_locks() const override { return with_locks_; }

  Result<std::uint64_t> counter_fetch_add(const std::string& key,
                                          std::uint64_t delta) override {
    if (fail_fetch_add) return Err::kStale;
    const std::uint64_t old = counters_map_[key];
    counters_map_[key] += delta;
    return old;
  }
  Err counter_set(const std::string& key, std::uint64_t value) override {
    counters_map_[key] = value;
    return Err::kOk;
  }
  bool supports_counters() const override { return true; }

  const char* name() const override { return "fake"; }

  std::vector<std::byte>& data() { return data_; }

  /// Simulated shared-counter outage: fetch_add fails while counter_set
  /// (used at open) still works.
  bool fail_fetch_add = false;

 private:
  bool with_locks_;
  Counters* counters_;
  std::string path_;
  std::vector<std::byte> data_;
  std::map<std::string, std::uint64_t> counters_map_;
};

/// Run `fn` on a single-rank world with a File over a FakeDriver. The
/// FakeDriver instance outlives the File (owned by `drv`).
void with_file(FakeDriver::Counters* counters, const Info& info,
               const std::function<void(File&, FakeDriver&)>& fn,
               bool with_locks = true) {
  mpi::WorldConfig cfg;
  cfg.nprocs = 1;
  mpi::World world(cfg);
  world.run([&](Comm& c) {
    auto drv = std::make_unique<FakeDriver>(with_locks, counters);
    FakeDriver* raw = drv.get();
    auto f = std::move(File::open(c, "/fake",
                                  mpiio::kModeCreate | mpiio::kModeRdwr, info,
                                  std::move(drv))
                           .value());
    fn(*f, *raw);
    f->close();
  });
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

// ---------------------------------------------------------------------------
// Info
// ---------------------------------------------------------------------------

TEST(InfoHints, GettersAndDefaults) {
  Info info;
  EXPECT_FALSE(info.get("missing").has_value());
  EXPECT_EQ(info.get_uint("missing", 42), 42u);
  EXPECT_TRUE(info.get_switch("missing", true));
  EXPECT_FALSE(info.get_switch("missing", false));

  info.set("cb_buffer_size", std::uint64_t{1024});
  EXPECT_EQ(info.get_uint("cb_buffer_size", 0), 1024u);
  info.set("romio_ds_read", "enable");
  EXPECT_TRUE(info.get_switch("romio_ds_read", false));
  info.set("romio_ds_read", "disable");
  EXPECT_FALSE(info.get_switch("romio_ds_read", true));
  info.set("romio_ds_read", "automatic");
  EXPECT_TRUE(info.get_switch("romio_ds_read", true));
  EXPECT_FALSE(info.get_switch("romio_ds_read", false));
  EXPECT_EQ(info.all().size(), 2u);
}

TEST(InfoHints, MalformedNumericHintFallsBackInsteadOfThrowing) {
  // Regression: get_uint used to call std::stoull unguarded, so a malformed
  // or overflowing hint aborted the rank with an uncaught exception.
  Info info;
  info.set("dafs_deadline_ms", "abc");
  EXPECT_EQ(info.get_uint("dafs_deadline_ms", 42), 42u);
  EXPECT_EQ(info.bad_hints(), 1u);

  info.set("cb_nodes", "12abc");  // trailing junk is malformed, not "12"
  EXPECT_EQ(info.get_uint("cb_nodes", 7), 7u);
  EXPECT_EQ(info.bad_hints(), 2u);

  info.set("cb_buffer_size", "99999999999999999999999");  // > UINT64_MAX
  EXPECT_EQ(info.get_uint("cb_buffer_size", 9), 9u);

  info.set("ind_rd_buffer_size", "-5");
  EXPECT_EQ(info.get_uint("ind_rd_buffer_size", 3), 3u);

  info.set("ind_wr_buffer_size", "");
  EXPECT_EQ(info.get_uint("ind_wr_buffer_size", 5), 5u);
  EXPECT_EQ(info.bad_hints(), 5u);

  // A well-formed value afterwards still parses.
  info.set("cb_nodes", "16");
  EXPECT_EQ(info.get_uint("cb_nodes", 7), 16u);
  EXPECT_EQ(info.bad_hints(), 5u);
}

TEST(InfoHints, SubMillisecondDeadlineSurvivesAbsentHint) {
  // Regression: the retry parser round-tripped base.deadline_ns through
  // milliseconds even when dafs_deadline_ms was absent, truncating any
  // sub-ms deadline to 0 (= no deadline at all).
  dafs::RetryPolicy base;
  base.deadline_ns = 500'000;  // 0.5 ms
  Info info;
  EXPECT_EQ(mpiio::HintSet::parse(info).retry_policy(base).deadline_ns,
            500'000u);

  info.set("dafs_deadline_ms", std::uint64_t{3});
  EXPECT_EQ(mpiio::HintSet::parse(info).retry_policy(base).deadline_ns,
            3'000'000u);

  info.set("dafs_deadline_ms", std::uint64_t{0});  // explicit "no deadline"
  EXPECT_EQ(mpiio::HintSet::parse(info).retry_policy(base).deadline_ns, 0u);
}

TEST(InfoHints, BusyRetryBudgetFlowsIntoPolicy) {
  // The lease-reclaim loops in dafs::Session honor RetryPolicy's
  // max_busy_retries (they used to hard-code 200); this is the hint that
  // feeds it. Behavioral coverage of the reclaim path itself rides with the
  // crash/failover/stripe fault tests.
  Info info;
  info.set("dafs_busy_retries", std::uint64_t{7});
  EXPECT_EQ(mpiio::HintSet::parse(info).retry_policy().max_busy_retries, 7);
  EXPECT_EQ(mpiio::HintSet::parse(Info{}).retry_policy().max_busy_retries,
            dafs::RetryPolicy{}.max_busy_retries);
}

TEST(InfoHints, UintHintRejectsTrailingGarbage) {
  // Suffixed sizes are not part of the hint grammar: "4k" must not parse as
  // 4 (a 4-byte stripe would shred every access), it must count as a bad
  // hint and keep the fallback.
  Info info;
  info.set("dafs_stripe_size", "4k");
  info.set("dafs_cache_bytes", "1MB");
  info.set("dafs_deadline_ms", "10 ");
  const auto h = mpiio::HintSet::parse(info);
  EXPECT_EQ(h.stripe_size_or(64 * 1024), 64u * 1024u);
  EXPECT_EQ(h.open_options().cache_bytes, 0u);
  EXPECT_EQ(h.retry_policy().deadline_ns, dafs::RetryPolicy{}.deadline_ns);
  EXPECT_EQ(info.bad_hints(), 3u);

  // The same grammar applies through the raw accessor.
  Info raw;
  raw.set("ind_rd_buffer_size", "64k");
  EXPECT_EQ(raw.get_uint("ind_rd_buffer_size", 7), 7u);
  EXPECT_EQ(raw.bad_hints(), 1u);
}

TEST(InfoHints, UnknownDafsKeyIsABadHint) {
  // A typo'd dafs_* hint should be loud, not silently inert; ROMIO keys and
  // other prefixes are not this layer's business.
  Info info;
  info.set("dafs_cache_byte", std::uint64_t{1 << 20});  // typo'd
  info.set("cb_buffer_size", "banana");                 // not ours to judge
  (void)mpiio::HintSet::parse(info);
  EXPECT_EQ(info.bad_hints(), 1u);
}

TEST(InfoHints, ConsistencyAndCacheHintsMakeOpenOptions) {
  Info info;
  info.set("dafs_consistency", "after_close");
  info.set("dafs_cache_bytes", std::uint64_t{1 << 20});
  info.set("dafs_attr_ttl_ms", std::uint64_t{2});
  const auto h = mpiio::HintSet::parse(info);
  EXPECT_TRUE(h.wants_cache());
  const dafs::OpenOptions o = h.open_options(dafs::kOpenCreate);
  EXPECT_EQ(o.flags, dafs::kOpenCreate);
  EXPECT_EQ(o.consistency, dafs::Consistency::kAfterClose);
  EXPECT_EQ(o.cache_bytes, std::uint64_t{1} << 20);
  EXPECT_EQ(o.attr_ttl_ns, 2'000'000u);

  // A malformed level is a bad hint and keeps the after_write default.
  Info bad;
  bad.set("dafs_consistency", "eventually");
  const auto hb = mpiio::HintSet::parse(bad);
  EXPECT_EQ(hb.open_options().consistency, dafs::Consistency::kAfterWrite);
  EXPECT_EQ(bad.bad_hints(), 1u);

  // Defaults: no hints = no cache, strictest level.
  const dafs::OpenOptions d = mpiio::HintSet::parse(Info{}).open_options();
  EXPECT_EQ(d.consistency, dafs::Consistency::kAfterWrite);
  EXPECT_EQ(d.cache_bytes, 0u);
  EXPECT_FALSE(mpiio::HintSet::parse(Info{}).wants_cache());
}

TEST(InfoHints, EndpointListTrimsWhitespaceAndDropsDuplicates) {
  // Regression: "a, b" used to produce an endpoint literally named " b",
  // which can never resolve against the fabric name service.
  Info info;
  info.set("dafs_endpoints", "filer-a, filer-b ,filer-a,, \t ,filer-c");
  const dafs::MountSpec m = mpiio::HintSet::parse(info).mount_spec();
  ASSERT_EQ(m.endpoints.size(), 3u);
  EXPECT_EQ(m.endpoints[0].service, "filer-a");
  EXPECT_EQ(m.endpoints[1].service, "filer-b");
  EXPECT_EQ(m.endpoints[2].service, "filer-c");

  // All-whitespace list degenerates to the default endpoint.
  Info junk;
  junk.set("dafs_endpoints", " ,  , ");
  const dafs::MountSpec d = mpiio::HintSet::parse(junk).mount_spec();
  ASSERT_EQ(d.endpoints.size(), 1u);
  EXPECT_EQ(d.endpoints[0].service, "dafs");
}

TEST(InfoHints, StripeHintsCarveDataServersOutOfEndpoints) {
  Info info;
  info.set("dafs_endpoints", "f0,f1,f2,f3");
  info.set("dafs_stripe_count", std::uint64_t{3});
  info.set("dafs_stripe_size", std::uint64_t{128 * 1024});
  const dafs::MountSpec m = mpiio::HintSet::parse(info).mount_spec();
  EXPECT_EQ(m.stripe_size, 128u * 1024u);
  ASSERT_EQ(m.data_endpoints.size(), 3u);
  EXPECT_EQ(m.data_endpoints[0].service, "f0");
  EXPECT_EQ(m.data_endpoints[1].service, "f1");
  EXPECT_EQ(m.data_endpoints[2].service, "f2");
  // Metadata stays on filer 0.
  ASSERT_EQ(m.endpoints.size(), 1u);
  EXPECT_EQ(m.endpoints[0].service, "f0");

  // Without a stripe count the endpoint list is a failover chain, not a
  // stripe set.
  Info plain;
  plain.set("dafs_endpoints", "f0,f1");
  const dafs::MountSpec p = mpiio::HintSet::parse(plain).mount_spec();
  EXPECT_EQ(p.endpoints.size(), 2u);
  EXPECT_TRUE(p.data_endpoints.empty());
}

// ---------------------------------------------------------------------------
// ADIO defaults
// ---------------------------------------------------------------------------

TEST(AdioDefaults, ListIoFallsBackToPerSegmentOps) {
  FakeDriver::Counters counters;
  FakeDriver drv(true, &counters);
  drv.open("/x", 0);
  auto data = pattern(3000, 1);
  drv.pwrite(0, data);
  counters = {};

  std::vector<std::byte> out(300);
  std::vector<IoSeg> segs = {
      {0, out.data(), 100}, {1000, out.data() + 100, 100},
      {2000, out.data() + 200, 100}};
  auto r = drv.read_list(segs);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 300u);
  EXPECT_EQ(counters.preads, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(std::memcmp(out.data() + i * 100, data.data() + i * 1000, 100),
              0);
  }

  counters = {};
  std::vector<IoSeg> wsegs = {{5000, out.data(), 100},
                              {6000, out.data() + 100, 100}};
  auto w = drv.write_list(wsegs);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), 200u);
  EXPECT_EQ(counters.pwrites, 2);
}

TEST(AdioDefaults, SyncAioCompletesAtSubmit) {
  FakeDriver drv;
  drv.open("/x", 0);
  auto data = pattern(128, 2);
  auto h = drv.submit_pwrite(10, data);
  ASSERT_TRUE(h.ok());
  std::uint64_t bytes = 0;
  EXPECT_EQ(drv.aio_wait(h.value(), &bytes), Err::kOk);
  EXPECT_EQ(bytes, 128u);
  EXPECT_EQ(drv.aio_wait(AioHandle{999}, &bytes), Err::kInval);
}

// ---------------------------------------------------------------------------
// Sieving behaviour, observed through device op counts
// ---------------------------------------------------------------------------

TEST(Sieving, ReadWindowCoalescesManySmallSegments) {
  FakeDriver::Counters counters;
  Info info;
  info.set("romio_ds_read", "enable");
  with_file(&counters, info, [&](File& f, FakeDriver& drv) {
    auto base = pattern(256 * 1024, 3);
    f.write_at(0, base.data(), base.size(), Datatype::byte());
    // Strided view: 128 B of every 1 KiB -> 256 segments.
    auto ft = Datatype::resized(
        Datatype::hvector(1, 128, 1024, Datatype::byte()), 0, 1024);
    ASSERT_EQ(f.set_view(0, Datatype::byte(), ft), Err::kOk);
    counters = {};
    std::vector<std::byte> out(256 * 128);
    auto r = f.read_at(0, out.data(), out.size(), Datatype::byte());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), out.size());
    // One sieve window covers everything: exactly one device pread, reading
    // holes and all.
    EXPECT_EQ(counters.preads, 1);
    EXPECT_GE(counters.bytes_read, 255u * 1024);
    // Data must match the strided extraction of the base buffer.
    for (int blk = 0; blk < 256; blk += 17) {
      EXPECT_EQ(std::memcmp(out.data() + blk * 128, base.data() + blk * 1024,
                            128),
                0)
          << blk;
    }
    (void)drv;
  });
}

TEST(Sieving, WriteUsesLockedReadModifyWrite) {
  FakeDriver::Counters counters;
  Info info;
  info.set("romio_ds_write", "enable");
  with_file(&counters, info, [&](File& f, FakeDriver& drv) {
    auto base = pattern(64 * 1024, 4);
    f.write_at(0, base.data(), base.size(), Datatype::byte());
    auto ft = Datatype::resized(
        Datatype::hvector(1, 64, 512, Datatype::byte()), 0, 512);
    ASSERT_EQ(f.set_view(0, Datatype::byte(), ft), Err::kOk);
    counters = {};
    std::vector<std::byte> marks(128 * 64, std::byte{0xCD});
    ASSERT_TRUE(
        f.write_at(0, marks.data(), marks.size(), Datatype::byte()).ok());
    // RMW: one read + one write per window, under a lock.
    EXPECT_EQ(counters.preads, counters.pwrites);
    EXPECT_EQ(counters.locks, counters.pwrites);
    EXPECT_EQ(counters.unlocks, counters.locks);
    EXPECT_GE(counters.locks, 1);
    // Gap bytes intact, marked bytes updated.
    EXPECT_EQ(drv.data()[0], std::byte{0xCD});
    EXPECT_EQ(drv.data()[63], std::byte{0xCD});
    EXPECT_EQ(drv.data()[64], base[64]);
    EXPECT_EQ(drv.data()[512], std::byte{0xCD});
  });
}

TEST(Sieving, WriteWithoutLocksFallsBackToListWrites) {
  FakeDriver::Counters counters;
  Info info;
  info.set("romio_ds_write", "enable");  // asked for, but no locks available
  with_file(
      &counters, info,
      [&](File& f, FakeDriver& drv) {
        auto ft = Datatype::resized(
            Datatype::hvector(1, 64, 512, Datatype::byte()), 0, 512);
        ASSERT_EQ(f.set_view(0, Datatype::byte(), ft), Err::kOk);
        counters = {};
        std::vector<std::byte> marks(16 * 64, std::byte{0xEE});
        ASSERT_TRUE(
            f.write_at(0, marks.data(), marks.size(), Datatype::byte()).ok());
        EXPECT_EQ(counters.locks, 0);
        EXPECT_EQ(counters.pwrites, 16);  // one per segment
        (void)drv;
      },
      /*with_locks=*/false);
}

TEST(Sieving, SmallWindowSplitsIntoMultipleDeviceReads) {
  FakeDriver::Counters counters;
  Info info;
  info.set("romio_ds_read", "enable");
  info.set("ind_rd_buffer_size", std::uint64_t{64 * 1024});
  with_file(&counters, info, [&](File& f, FakeDriver& drv) {
    auto base = pattern(512 * 1024, 5);
    f.write_at(0, base.data(), base.size(), Datatype::byte());
    auto ft = Datatype::resized(
        Datatype::hvector(1, 256, 2048, Datatype::byte()), 0, 2048);
    ASSERT_EQ(f.set_view(0, Datatype::byte(), ft), Err::kOk);
    counters = {};
    std::vector<std::byte> out(256 * 256);
    ASSERT_TRUE(f.read_at(0, out.data(), out.size(), Datatype::byte()).ok());
    // 256 segments spanning 512 KiB with a 64 KiB sieve buffer -> >= 8 reads.
    EXPECT_GE(counters.preads, 8);
    EXPECT_LE(counters.preads, 16);
    (void)drv;
  });
}

TEST(Sieving, ReadPastEofReturnsShortCount) {
  // Strided view whose tail lies past EOF: the sieve window read comes back
  // short and the op must return just the bytes that exist.
  FakeDriver::Counters counters;
  Info info;
  info.set("romio_ds_read", "enable");
  with_file(&counters, info, [&](File& f, FakeDriver& drv) {
    auto base = pattern(10'000, 11);
    f.write_at(0, base.data(), base.size(), Datatype::byte());
    // 700 B of every 1 KiB; EOF at 10 KiB cuts the stride off after 10 blocks.
    auto ft = Datatype::resized(
        Datatype::hvector(1, 700, 1000, Datatype::byte()), 0, 1000);
    ASSERT_EQ(f.set_view(0, Datatype::byte(), ft), Err::kOk);
    counters = {};
    std::vector<std::byte> out(66 * 700, std::byte{0});
    auto r = f.read_at(0, out.data(), out.size(), Datatype::byte());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 10u * 700);  // blocks 0..9 exist, the rest are gone
    EXPECT_EQ(counters.preads, 1);    // one short window, no futile re-reads
    for (int blk = 0; blk < 10; ++blk) {
      EXPECT_EQ(std::memcmp(out.data() + blk * 700, base.data() + blk * 1000,
                            700),
                0)
          << blk;
    }
    (void)drv;
  });
}

TEST(Sieving, ReadSegmentLargerThanBufferPastEofTerminates) {
  // Regression: a segment longer than the sieve buffer starting past EOF
  // used to respawn the same window forever (short read -> zero progress on
  // the tail -> identical retry). Must terminate with the bytes before EOF.
  FakeDriver::Counters counters;
  Info info;
  info.set("romio_ds_read", "enable");
  info.set("ind_rd_buffer_size", std::uint64_t{64 * 1024});
  with_file(&counters, info, [&](File& f, FakeDriver& drv) {
    auto base = pattern(10'000, 12);
    f.write_at(0, base.data(), base.size(), Datatype::byte());
    // Two blocks: 100 B in the data, then 70000 B (> the 64 KiB sieve
    // buffer) starting far past EOF.
    const std::array<std::uint32_t, 2> lens = {100, 70'000};
    const std::array<std::int64_t, 2> displs = {0, 100'000};
    auto ft = Datatype::hindexed(lens, displs, Datatype::byte());
    ASSERT_EQ(f.set_view(0, Datatype::byte(), ft), Err::kOk);
    counters = {};
    std::vector<std::byte> out(70'100, std::byte{0});
    auto r = f.read_at(0, out.data(), out.size(), Datatype::byte());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 100u);
    EXPECT_LE(counters.preads, 2);  // in-data window + one short probe
    EXPECT_EQ(std::memcmp(out.data(), base.data(), 100), 0);
    (void)drv;
  });
}

// ---------------------------------------------------------------------------
// Portable-layer odds and ends over the fake device
// ---------------------------------------------------------------------------

TEST(PortableLayer, ByteOffsetFollowsViewTiling) {
  with_file(nullptr, Info{}, [&](File& f, FakeDriver&) {
    auto ft = Datatype::resized(
        Datatype::hvector(1, 100, 1000, Datatype::byte()), 0, 1000);
    ASSERT_EQ(f.set_view(5000, Datatype::byte(), ft), Err::kOk);
    EXPECT_EQ(f.byte_offset(0), 5000u);
    EXPECT_EQ(f.byte_offset(99), 5099u);
    EXPECT_EQ(f.byte_offset(100), 6000u);  // next tile
    EXPECT_EQ(f.byte_offset(250), 7050u);
  });
}

TEST(PortableLayer, SharedPointerOpsOverCounters) {
  with_file(nullptr, Info{}, [&](File& f, FakeDriver&) {
    auto data = pattern(100, 6);
    ASSERT_TRUE(f.write_shared(data.data(), 100, Datatype::byte()).ok());
    ASSERT_TRUE(f.write_shared(data.data(), 100, Datatype::byte()).ok());
    EXPECT_EQ(f.get_size().value(), 200u);
    ASSERT_EQ(f.seek_shared(50, mpiio::Whence::kSet), Err::kOk);
    std::vector<std::byte> back(100);
    ASSERT_TRUE(f.read_shared(back.data(), 100, Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(back.data(), data.data() + 50, 50), 0);
    EXPECT_EQ(std::memcmp(back.data() + 50, data.data(), 50), 0);
  });
}

TEST(PortableLayer, OrderedOpsPropagateCounterFailureToEveryRank) {
  // The ordered ops fetch-add the shared pointer on rank 0 only. When that
  // counter op fails, every rank must see the error — not a silent base of
  // zero on the non-root ranks.
  constexpr int kNp = 2;
  mpi::WorldConfig cfg;
  cfg.nprocs = kNp;
  mpi::World world(cfg);
  std::array<Err, kNp> write_err{};
  std::array<Err, kNp> read_err{};
  world.run([&](Comm& c) {
    auto drv = std::make_unique<FakeDriver>();
    drv->fail_fetch_add = true;  // counter_set at open still succeeds
    auto f = std::move(File::open(c, "/ord",
                                  mpiio::kModeCreate | mpiio::kModeRdwr,
                                  Info{}, std::move(drv))
                           .value());
    auto data = pattern(64, 13);
    auto w = f->write_ordered(data.data(), data.size(), Datatype::byte());
    write_err[c.rank()] = w.ok() ? Err::kOk : w.error();
    std::vector<std::byte> back(64);
    auto r = f->read_ordered(back.data(), back.size(), Datatype::byte());
    read_err[c.rank()] = r.ok() ? Err::kOk : r.error();
    f->close();
  });
  for (int rank = 0; rank < kNp; ++rank) {
    EXPECT_EQ(write_err[rank], Err::kStale) << "rank " << rank;
    EXPECT_EQ(read_err[rank], Err::kStale) << "rank " << rank;
  }
}

TEST(PortableLayer, AppendModePositionsAtEof) {
  mpi::WorldConfig cfg;
  cfg.nprocs = 1;
  mpi::World world(cfg);
  world.run([&](Comm& c) {
    auto drv = std::make_unique<FakeDriver>();
    drv->open("/pre", 0);
    auto data = pattern(500, 7);
    drv->pwrite(0, data);
    auto f = std::move(
        File::open(c, "/pre", mpiio::kModeRdwr | mpiio::kModeAppend, Info{},
                   std::move(drv))
            .value());
    EXPECT_EQ(f->position(), 500u);
    std::byte b{0x11};
    ASSERT_TRUE(f->write(&b, 1, Datatype::byte()).ok());
    EXPECT_EQ(f->get_size().value(), 501u);
    f->close();
  });
}

TEST(PortableLayer, ZeroCountOpsSucceedTrivially) {
  with_file(nullptr, Info{}, [&](File& f, FakeDriver&) {
    auto r = f.read_at(0, nullptr, 0, Datatype::byte());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 0u);
    auto w = f.write_at(0, nullptr, 0, Datatype::byte());
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.value(), 0u);
  });
}

TEST(PortableLayer, IndexedViewGathersOutOfOrderBlocks) {
  with_file(nullptr, Info{}, [&](File& f, FakeDriver& drv) {
    auto base = pattern(4096, 8);
    f.write_at(0, base.data(), base.size(), Datatype::byte());
    // View visiting blocks at displacements 512, 0, 2048 (in that order).
    const std::array<std::uint32_t, 3> lens = {64, 64, 64};
    const std::array<std::int64_t, 3> displs = {512, 0, 2048};
    auto ft = Datatype::hindexed(lens, displs, Datatype::byte());
    ASSERT_EQ(f.set_view(0, Datatype::byte(), ft), Err::kOk);
    std::vector<std::byte> out(192);
    ASSERT_TRUE(f.read_at(0, out.data(), out.size(), Datatype::byte()).ok());
    EXPECT_EQ(std::memcmp(out.data(), base.data() + 512, 64), 0);
    EXPECT_EQ(std::memcmp(out.data() + 64, base.data(), 64), 0);
    EXPECT_EQ(std::memcmp(out.data() + 128, base.data() + 2048, 64), 0);
    (void)drv;
  });
}

}  // namespace
