#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "fstore/file_store.hpp"
#include "sim/rng.hpp"

namespace {

using fstore::Attrs;
using fstore::Errc;
using fstore::FileStore;
using fstore::Ino;
using fstore::kRootIno;
using fstore::Options;

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

// ---------------------------------------------------------------------------
// Namespace operations
// ---------------------------------------------------------------------------

TEST(FStoreNamespace, CreateAndLookup) {
  FileStore fs;
  auto ino = fs.create(kRootIno, "a.txt", true);
  ASSERT_TRUE(ino.ok());
  auto found = fs.lookup(kRootIno, "a.txt");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), ino.value());
  EXPECT_FALSE(fs.lookup(kRootIno, "b.txt").ok());
}

TEST(FStoreNamespace, CreateExclusiveFailsOnExisting) {
  FileStore fs;
  ASSERT_TRUE(fs.create(kRootIno, "a", true).ok());
  auto again = fs.create(kRootIno, "a", true);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error(), Errc::kExists);
  // Non-exclusive open-create returns the same inode.
  auto open = fs.create(kRootIno, "a", false);
  ASSERT_TRUE(open.ok());
}

TEST(FStoreNamespace, RejectsBadNames) {
  FileStore fs;
  EXPECT_EQ(fs.create(kRootIno, "", true).error(), Errc::kInval);
  EXPECT_EQ(fs.create(kRootIno, "a/b", true).error(), Errc::kInval);
}

TEST(FStoreNamespace, MkdirAndNestedResolve) {
  FileStore fs;
  auto d1 = fs.mkdir(kRootIno, "dir");
  ASSERT_TRUE(d1.ok());
  auto d2 = fs.mkdir(d1.value(), "sub");
  ASSERT_TRUE(d2.ok());
  auto f = fs.create(d2.value(), "file", true);
  ASSERT_TRUE(f.ok());
  auto r = fs.resolve("/dir/sub/file");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), f.value());
  EXPECT_EQ(fs.resolve("").value(), kRootIno);
  EXPECT_EQ(fs.resolve("/").value(), kRootIno);
  EXPECT_EQ(fs.resolve("dir/sub").value(), d2.value());
  EXPECT_EQ(fs.resolve("/dir/none").error(), Errc::kNoEnt);
  EXPECT_EQ(fs.resolve("/dir/sub/file/deeper").error(), Errc::kNotDir);
}

TEST(FStoreNamespace, RemoveFrees) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  ASSERT_TRUE(f.ok());
  std::string data = "hello";
  ASSERT_TRUE(fs.pwrite(f.value(), 0, as_bytes(data)).ok());
  EXPECT_EQ(fs.remove(kRootIno, "f"), Errc::kOk);
  EXPECT_EQ(fs.lookup(kRootIno, "f").error(), Errc::kNoEnt);
  EXPECT_EQ(fs.getattr(f.value()).error(), Errc::kStale);
  EXPECT_EQ(fs.remove(kRootIno, "f"), Errc::kNoEnt);
}

TEST(FStoreNamespace, RemoveRejectsDirectories) {
  FileStore fs;
  ASSERT_TRUE(fs.mkdir(kRootIno, "d").ok());
  EXPECT_EQ(fs.remove(kRootIno, "d"), Errc::kIsDir);
  EXPECT_EQ(fs.rmdir(kRootIno, "d"), Errc::kOk);
}

TEST(FStoreNamespace, RmdirRequiresEmpty) {
  FileStore fs;
  auto d = fs.mkdir(kRootIno, "d");
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(fs.create(d.value(), "f", true).ok());
  EXPECT_EQ(fs.rmdir(kRootIno, "d"), Errc::kNotEmpty);
  EXPECT_EQ(fs.remove(d.value(), "f"), Errc::kOk);
  EXPECT_EQ(fs.rmdir(kRootIno, "d"), Errc::kOk);
}

TEST(FStoreNamespace, RenameMovesAndReplaces) {
  FileStore fs;
  auto f = fs.create(kRootIno, "old", true);
  ASSERT_TRUE(f.ok());
  auto d = fs.mkdir(kRootIno, "dir");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(fs.rename(kRootIno, "old", d.value(), "new"), Errc::kOk);
  EXPECT_FALSE(fs.lookup(kRootIno, "old").ok());
  EXPECT_EQ(fs.lookup(d.value(), "new").value(), f.value());
  // Replace an existing file.
  auto g = fs.create(d.value(), "victim", true);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(fs.rename(d.value(), "new", d.value(), "victim"), Errc::kOk);
  EXPECT_EQ(fs.lookup(d.value(), "victim").value(), f.value());
  EXPECT_EQ(fs.getattr(g.value()).error(), Errc::kStale);
}

TEST(FStoreNamespace, ReaddirListsEntries) {
  FileStore fs;
  ASSERT_TRUE(fs.create(kRootIno, "b", true).ok());
  ASSERT_TRUE(fs.create(kRootIno, "a", true).ok());
  ASSERT_TRUE(fs.mkdir(kRootIno, "d").ok());
  auto list = fs.readdir(kRootIno);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().size(), 3u);
  EXPECT_EQ(list.value()[0].name, "a");  // map order: sorted
  EXPECT_EQ(list.value()[1].name, "b");
  EXPECT_EQ(list.value()[2].name, "d");
  EXPECT_TRUE(list.value()[2].is_dir);
}

// ---------------------------------------------------------------------------
// Data path: pread/pwrite
// ---------------------------------------------------------------------------

TEST(FStoreData, WriteReadRoundTrip) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  ASSERT_TRUE(f.ok());
  auto data = pattern(10'000, 1);
  ASSERT_EQ(fs.pwrite(f.value(), 0, data).value(), 10'000u);
  std::vector<std::byte> back(10'000);
  ASSERT_EQ(fs.pread(f.value(), 0, back).value(), 10'000u);
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
  EXPECT_EQ(fs.getattr(f.value()).value().size, 10'000u);
}

TEST(FStoreData, ReadShortAtEof) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  std::string data = "0123456789";
  ASSERT_TRUE(fs.pwrite(f.value(), 0, as_bytes(data)).ok());
  std::vector<std::byte> buf(100);
  EXPECT_EQ(fs.pread(f.value(), 5, buf).value(), 5u);
  EXPECT_EQ(fs.pread(f.value(), 10, buf).value(), 0u);
  EXPECT_EQ(fs.pread(f.value(), 999, buf).value(), 0u);
}

TEST(FStoreData, SparseHolesReadAsZeros) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  std::string tail = "end";
  const std::uint64_t far = 1'000'000;
  ASSERT_TRUE(fs.pwrite(f.value(), far, as_bytes(tail)).ok());
  EXPECT_EQ(fs.getattr(f.value()).value().size, far + 3);
  std::vector<std::byte> buf(64, std::byte{0xff});
  ASSERT_EQ(fs.pread(f.value(), 1000, buf).value(), 64u);
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST(FStoreData, CrossChunkWritesAreSeamless) {
  Options opt;
  opt.chunk_size = 256;  // tiny chunks to force many boundaries
  opt.chunks_per_slab = 8;
  FileStore fs(opt);
  auto f = fs.create(kRootIno, "f", true);
  auto data = pattern(10'000, 2);
  // Write in awkward misaligned pieces.
  std::uint64_t off = 0;
  std::size_t piece = 1;
  while (off < data.size()) {
    const std::size_t n = std::min(piece, data.size() - off);
    ASSERT_TRUE(fs.pwrite(f.value(), off,
                          std::span<const std::byte>(data.data() + off, n))
                    .ok());
    off += n;
    piece = piece * 3 + 1;
  }
  std::vector<std::byte> back(data.size());
  ASSERT_EQ(fs.pread(f.value(), 0, back).value(), data.size());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
}

TEST(FStoreData, OverwriteInPlace) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  std::string a(100, 'a'), b(10, 'b');
  ASSERT_TRUE(fs.pwrite(f.value(), 0, as_bytes(a)).ok());
  ASSERT_TRUE(fs.pwrite(f.value(), 45, as_bytes(b)).ok());
  EXPECT_EQ(fs.getattr(f.value()).value().size, 100u);
  std::vector<std::byte> back(100);
  ASSERT_TRUE(fs.pread(f.value(), 0, back).ok());
  EXPECT_EQ(static_cast<char>(back[44]), 'a');
  EXPECT_EQ(static_cast<char>(back[45]), 'b');
  EXPECT_EQ(static_cast<char>(back[54]), 'b');
  EXPECT_EQ(static_cast<char>(back[55]), 'a');
}

TEST(FStoreData, DataOpsOnDirectoryFail) {
  FileStore fs;
  auto d = fs.mkdir(kRootIno, "d");
  std::vector<std::byte> buf(10);
  EXPECT_EQ(fs.pread(d.value(), 0, buf).error(), Errc::kIsDir);
  EXPECT_EQ(fs.pwrite(d.value(), 0, buf).error(), Errc::kIsDir);
  EXPECT_EQ(fs.set_size(d.value(), 0), Errc::kIsDir);
}

TEST(FStoreData, SetSizeTruncatesAndZeroFills) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  auto data = pattern(100'000, 3);
  ASSERT_TRUE(fs.pwrite(f.value(), 0, data).ok());
  ASSERT_EQ(fs.set_size(f.value(), 50'000), Errc::kOk);
  EXPECT_EQ(fs.getattr(f.value()).value().size, 50'000u);
  // Growing the file again must expose zeros, not stale bytes.
  ASSERT_EQ(fs.set_size(f.value(), 100'000), Errc::kOk);
  std::vector<std::byte> back(50'000);
  ASSERT_EQ(fs.pread(f.value(), 50'000, back).value(), 50'000u);
  for (std::size_t i = 0; i < back.size(); i += 997) {
    EXPECT_EQ(back[i], std::byte{0}) << "offset " << i;
  }
}

TEST(FStoreData, SetSizeExtendsSparsely) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  ASSERT_EQ(fs.set_size(f.value(), 1 << 20), Errc::kOk);
  EXPECT_EQ(fs.getattr(f.value()).value().size, 1u << 20);
  EXPECT_EQ(fs.stats().get("fstore.chunks_allocated"), 0u);
}

// ---------------------------------------------------------------------------
// Zero-copy extent path
// ---------------------------------------------------------------------------

TEST(FStoreExtents, EnsureThenCommitBehavesLikeWrite) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  auto data = pattern(200'000, 4);
  auto ext = fs.ensure_extents(f.value(), 0, data.size());
  ASSERT_TRUE(ext.ok());
  std::size_t off = 0;
  for (auto s : ext.value()) {
    std::memcpy(s.data(), data.data() + off, s.size());
    off += s.size();
  }
  EXPECT_EQ(off, data.size());
  ASSERT_EQ(fs.commit_write(f.value(), 0, data.size()), Errc::kOk);
  EXPECT_EQ(fs.getattr(f.value()).value().size, data.size());
  std::vector<std::byte> back(data.size());
  ASSERT_TRUE(fs.pread(f.value(), 0, back).ok());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
}

TEST(FStoreExtents, ReadExtentsClampToEof) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  auto data = pattern(1000, 5);
  ASSERT_TRUE(fs.pwrite(f.value(), 0, data).ok());
  auto ext = fs.extents_for_read(f.value(), 500, 10'000);
  ASSERT_TRUE(ext.ok());
  std::size_t total = 0;
  for (auto s : ext.value()) total += s.size();
  EXPECT_EQ(total, 500u);
  auto past = fs.extents_for_read(f.value(), 5'000, 100);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past.value().empty());
}

TEST(FStoreExtents, ExtentsExposeLiveChunks) {
  FileStore fs;
  auto f = fs.create(kRootIno, "f", true);
  std::string data = "abcdef";
  ASSERT_TRUE(fs.pwrite(f.value(), 0, as_bytes(data)).ok());
  auto ext = fs.extents_for_read(f.value(), 2, 3);
  ASSERT_TRUE(ext.ok());
  ASSERT_EQ(ext.value().size(), 1u);
  EXPECT_EQ(static_cast<char>(ext.value()[0][0]), 'c');
  // Writing through the span is visible to pread (it IS the cache chunk).
  ext.value()[0][0] = static_cast<std::byte>('C');
  std::vector<std::byte> back(6);
  ASSERT_TRUE(fs.pread(f.value(), 0, back).ok());
  EXPECT_EQ(static_cast<char>(back[2]), 'C');
}

TEST(FStoreExtents, SlabCallbackFiresOnAllocation) {
  Options opt;
  opt.chunk_size = 1024;
  opt.chunks_per_slab = 4;
  std::vector<std::size_t> slab_sizes;
  FileStore fs(opt, [&](std::span<std::byte> s) {
    slab_sizes.push_back(s.size());
  });
  auto f = fs.create(kRootIno, "f", true);
  std::vector<std::byte> data(10 * 1024);
  ASSERT_TRUE(fs.pwrite(f.value(), 0, data).ok());
  // 10 chunks needed -> 3 slabs of 4 chunks.
  EXPECT_EQ(slab_sizes.size(), 3u);
  for (auto s : slab_sizes) EXPECT_EQ(s, 4096u);
}

// ---------------------------------------------------------------------------
// Cache / disk model
// ---------------------------------------------------------------------------

TEST(FStoreCache, MissesChargeDiskAndHitsDoNot) {
  Options opt;
  opt.disk_enabled = true;
  opt.cache_chunks = 16;
  FileStore fs(opt);
  auto f = fs.create(kRootIno, "f", true);
  std::vector<std::byte> data(opt.chunk_size);
  ASSERT_TRUE(fs.pwrite(f.value(), 0, data).ok());  // first touch: miss
  EXPECT_EQ(fs.stats().get("fstore.cache_misses"), 1u);
  std::vector<std::byte> back(opt.chunk_size);
  ASSERT_TRUE(fs.pread(f.value(), 0, back).ok());  // warm: hit
  EXPECT_EQ(fs.stats().get("fstore.cache_hits"), 1u);
  EXPECT_EQ(fs.stats().get("fstore.cache_misses"), 1u);
}

TEST(FStoreCache, LruEvictsColdChunks) {
  Options opt;
  opt.disk_enabled = true;
  opt.cache_chunks = 2;
  opt.chunk_size = 1024;
  FileStore fs(opt);
  auto f = fs.create(kRootIno, "f", true);
  std::vector<std::byte> chunk(1024);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fs.pwrite(f.value(), i * 1024, chunk).ok());
  }
  EXPECT_EQ(fs.stats().get("fstore.cache_misses"), 4u);
  EXPECT_EQ(fs.stats().get("fstore.cache_evictions"), 2u);
  // Chunk 0 was evicted: re-reading it misses again.
  std::vector<std::byte> back(1024);
  ASSERT_TRUE(fs.pread(f.value(), 0, back).ok());
  EXPECT_EQ(fs.stats().get("fstore.cache_misses"), 5u);
}

// ---------------------------------------------------------------------------
// Named counters
// ---------------------------------------------------------------------------

TEST(FStoreCounters, FetchAddIsSequential) {
  FileStore fs;
  EXPECT_EQ(fs.counter_fetch_add("c", 5), 0u);
  EXPECT_EQ(fs.counter_fetch_add("c", 3), 5u);
  EXPECT_EQ(fs.counter_fetch_add("c", 0), 8u);
  fs.counter_set("c", 100);
  EXPECT_EQ(fs.counter_fetch_add("c", 1), 100u);
  EXPECT_EQ(fs.counter_fetch_add("other", 1), 0u);
}

// ---------------------------------------------------------------------------
// Property: random op sequence matches a reference model
// ---------------------------------------------------------------------------

TEST(FStoreProperty, RandomWritesMatchReferenceModel) {
  Options opt;
  opt.chunk_size = 512;
  FileStore fs(opt);
  auto f = fs.create(kRootIno, "f", true);
  std::vector<std::byte> model;  // reference: a plain flat buffer
  sim::Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t off = rng.below(8'192);
    const std::size_t len = 1 + rng.below(1'500);
    auto data = pattern(len, rng.next());
    ASSERT_TRUE(fs.pwrite(f.value(), off, data).ok());
    if (model.size() < off + len) model.resize(off + len);
    std::memcpy(model.data() + off, data.data(), len);
  }
  std::vector<std::byte> back(model.size());
  ASSERT_EQ(fs.pread(f.value(), 0, back).value(), model.size());
  EXPECT_EQ(std::memcmp(model.data(), back.data(), model.size()), 0);
  EXPECT_EQ(fs.getattr(f.value()).value().size, model.size());
}

// ---------------------------------------------------------------------------
// Write-ahead journal: sync is a durability barrier, crash replays it
// ---------------------------------------------------------------------------

Options journal_opt() {
  Options opt;
  opt.chunk_size = 512;  // multi-chunk writes with small buffers
  opt.journal_enabled = true;
  return opt;
}

TEST(FStoreJournal, UnsyncedWritesVanishOnCrash) {
  FileStore fs(journal_opt());
  auto f = fs.create(kRootIno, "f", true).value();
  const auto base = pattern(2'000, 1);
  ASSERT_TRUE(fs.pwrite(f, 0, base).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);

  const auto late = pattern(2'000, 2);
  ASSERT_TRUE(fs.pwrite(f, 0, late).ok());  // acknowledged, not durable
  fs.crash();

  // The file (a durable-immediate create) is still there; its data is the
  // synced pre-image, byte for byte.
  ASSERT_EQ(fs.resolve("/f").value(), f);
  std::vector<std::byte> back(base.size());
  ASSERT_EQ(fs.pread(f, 0, back).value(), base.size());
  EXPECT_EQ(std::memcmp(back.data(), base.data(), base.size()), 0);
  EXPECT_EQ(fs.journal_pending_bytes(), 0u);
}

TEST(FStoreJournal, TornMultiBlockWriteIsInvisible) {
  FileStore fs(journal_opt());
  auto f = fs.create(kRootIno, "f", true).value();
  // Durable base image spanning four chunks.
  const auto base = pattern(4 * 512, 10);
  ASSERT_TRUE(fs.pwrite(f, 0, base).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);

  // A logical update issued as several block writes ("multi-block write").
  // The crash lands after some blocks but before the sync: the durable image
  // must show the full pre-image — no torn mix.
  const auto update = pattern(4 * 512, 11);
  ASSERT_TRUE(fs.pwrite(f, 0, std::span(update).subspan(0, 512)).ok());
  ASSERT_TRUE(fs.pwrite(f, 512, std::span(update).subspan(512, 512)).ok());
  fs.crash();
  std::vector<std::byte> back(base.size());
  ASSERT_EQ(fs.pread(f, 0, back).value(), base.size());
  EXPECT_EQ(std::memcmp(back.data(), base.data(), base.size()), 0)
      << "crash exposed a torn multi-block write";

  // The same update fully applied and synced commits atomically: after the
  // next crash the full post-image is visible.
  for (std::uint64_t blk = 0; blk < 4; ++blk) {
    ASSERT_TRUE(
        fs.pwrite(f, blk * 512, std::span(update).subspan(blk * 512, 512))
            .ok());
  }
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  fs.crash();
  ASSERT_EQ(fs.pread(f, 0, back).value(), update.size());
  EXPECT_EQ(std::memcmp(back.data(), update.data(), update.size()), 0);
}

TEST(FStoreJournal, MetadataOpsAreDurableImmediately) {
  FileStore fs(journal_opt());
  auto d = fs.mkdir(kRootIno, "dir").value();
  auto f = fs.create(d, "f", true).value();
  const auto gen = fs.getattr(f).value().gen;
  ASSERT_EQ(fs.rename(d, "f", kRootIno, "g"), Errc::kOk);
  fs.crash();
  ASSERT_EQ(fs.resolve("/g").value(), f);
  EXPECT_EQ(fs.getattr(f).value().gen, gen);
  EXPECT_EQ(fs.resolve("/dir/f").error(), Errc::kNoEnt);

  // Remove + recreate across a crash yields a fresh incarnation: the (ino,
  // gen) pair never repeats, which is what lease validation keys on.
  ASSERT_EQ(fs.remove(kRootIno, "g"), Errc::kOk);
  fs.crash();
  EXPECT_EQ(fs.resolve("/g").error(), Errc::kNoEnt);
  auto f2 = fs.create(kRootIno, "g", true).value();
  const auto gen2 = fs.getattr(f2).value().gen;
  EXPECT_TRUE(f2 != f || gen2 != gen);
}

TEST(FStoreJournal, AutosyncBoundsPendingBytes) {
  Options opt = journal_opt();
  opt.journal_autosync_bytes = 4 * 512;
  FileStore fs(opt);
  auto f = fs.create(kRootIno, "f", true).value();
  const auto data = pattern(512, 20);
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs.pwrite(f, i * 512, data).ok());
    EXPECT_LE(fs.journal_pending_bytes(), opt.journal_autosync_bytes);
  }
  // The watermark write-backs made earlier stripes durable without an
  // explicit sync: a crash now keeps everything the autosync flushed.
  fs.crash();
  std::vector<std::byte> back(512);
  ASSERT_EQ(fs.pread(f, 0, back).value(), back.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);
}

TEST(FStoreJournal, CountersAndDupFilterSurviveCrash) {
  FileStore fs(journal_opt());
  EXPECT_EQ(fs.counter_fetch_add_once("c", 5, /*client_id=*/7, /*seq=*/1), 0u);
  EXPECT_EQ(fs.counter_fetch_add_once("c", 5, 7, 2), 5u);
  fs.crash();
  // Retransmits of already-applied mutations return the recorded old value
  // instead of re-applying (exactly-once across restart)...
  EXPECT_EQ(fs.counter_fetch_add_once("c", 5, 7, 1), 0u);
  EXPECT_EQ(fs.counter_fetch_add_once("c", 5, 7, 2), 5u);
  EXPECT_EQ(fs.counter_fetch_add("c", 0), 10u);
  // ...while a fresh seq applies normally.
  EXPECT_EQ(fs.counter_fetch_add_once("c", 5, 7, 3), 10u);
  EXPECT_EQ(fs.counter_fetch_add("c", 0), 15u);

  // Acked records are dropped; a (wrongly) re-sent acked seq re-applies,
  // which is why clients only ack responses they have fully consumed.
  fs.dup_forget(7, 3);
  EXPECT_EQ(fs.counter_fetch_add_once("c", 1, 7, 4), 15u);
}

TEST(FStoreJournal, CorruptTailIsTruncatedOnReplay) {
  FileStore fs(journal_opt());
  auto f = fs.create(kRootIno, "f", true).value();
  const auto first = pattern(512, 40);
  ASSERT_TRUE(fs.pwrite(f, 0, first).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  // A second synced write ends the log on a payload-bearing kSyncCommit
  // record; flipping a byte in its payload breaks that record's CRC.
  const auto second = pattern(512, 41);
  ASSERT_TRUE(fs.pwrite(f, 512, second).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);

  const std::uint64_t full = fs.journal_size();
  fs.journal_log().corrupt_tail_byte();
  fs.crash();

  // Replay detected the corrupt tail record, truncated it off the log, and
  // counted the dropped bytes; the durable image is exactly the first sync.
  EXPECT_LT(fs.journal_size(), full);
  EXPECT_GT(fs.stats().get("fstore.journal_truncated_bytes"), 0u);
  EXPECT_EQ(fs.getattr(f).value().size, 512u);
  std::vector<std::byte> back(512);
  ASSERT_EQ(fs.pread(f, 0, back).value(), 512u);
  EXPECT_EQ(std::memcmp(back.data(), first.data(), 512), 0);

  // The truncated log is self-consistent: a second crash replays cleanly
  // without dropping anything further.
  const std::uint64_t clean = fs.journal_size();
  fs.crash();
  EXPECT_EQ(fs.journal_size(), clean);
  ASSERT_EQ(fs.pread(f, 0, back).value(), 512u);
  EXPECT_EQ(std::memcmp(back.data(), first.data(), 512), 0);
}

TEST(FStoreJournal, InteriorCorruptionRefusesMountWithoutTruncating) {
  FileStore fs(journal_opt());
  auto f = fs.create(kRootIno, "f", true).value();
  const auto first = pattern(512, 80);
  ASSERT_TRUE(fs.pwrite(f, 0, first).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  const std::uint64_t s1 = fs.journal_size();
  ASSERT_TRUE(fs.pwrite(f, 512, pattern(512, 81)).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  // A third synced write leaves valid records *after* the frame we damage —
  // the discriminator between bit rot and a torn final write.
  ASSERT_TRUE(fs.pwrite(f, 1024, pattern(512, 82)).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  const std::uint64_t full = fs.journal_size();

  // Flip one byte inside the second record's payload: its frame starts at
  // s1, so replay must name s1 as the corrupt offset.
  fs.journal_log().corrupt_byte_at(s1 + sizeof(fstore::RecHeader) + 4);
  EXPECT_EQ(fs.crash(), Errc::kCorrupt);
  EXPECT_EQ(fs.journal_corrupt_offset(), s1);
  EXPECT_EQ(fs.stats().get("fstore.journal_interior_corrupt"), 1u);
  // The log was NOT truncated — that would silently erase the valid suffix
  // (the third record). The evidence stays in place for inspection.
  EXPECT_EQ(fs.journal_size(), full);
  EXPECT_EQ(fs.stats().get("fstore.journal_truncated_bytes"), 0u);
  // Only the records before the bad frame were applied: the durable image is
  // exactly the first sync.
  EXPECT_EQ(fs.getattr(f).value().size, 512u);
  std::vector<std::byte> back(512);
  ASSERT_EQ(fs.pread(f, 0, back).value(), 512u);
  EXPECT_EQ(std::memcmp(back.data(), first.data(), 512), 0);
}

TEST(FStoreJournal, ChoppedTailIsLegalTornWrite) {
  FileStore fs(journal_opt());
  auto f = fs.create(kRootIno, "f", true).value();
  const auto first = pattern(512, 85);
  ASSERT_TRUE(fs.pwrite(f, 0, first).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  const std::uint64_t intact = fs.journal_size();
  ASSERT_TRUE(fs.pwrite(f, 512, pattern(512, 86)).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  const std::uint64_t full = fs.journal_size();

  // A power cut tears the final record mid-write: only part of its bytes
  // reached stable storage. No valid record follows the break, so this is
  // the legal crash form — truncate and mount.
  fs.journal_log().chop_tail(5);
  EXPECT_EQ(fs.crash(), Errc::kOk);
  EXPECT_EQ(fs.journal_corrupt_offset(), ~std::uint64_t{0});
  EXPECT_EQ(fs.journal_size(), intact);
  EXPECT_EQ(fs.stats().get("fstore.journal_truncated_bytes"),
            full - 5 - intact);
  EXPECT_EQ(fs.stats().get("fstore.journal_interior_corrupt"), 0u);
  EXPECT_EQ(fs.getattr(f).value().size, 512u);
  std::vector<std::byte> back(512);
  ASSERT_EQ(fs.pread(f, 0, back).value(), 512u);
  EXPECT_EQ(std::memcmp(back.data(), first.data(), 512), 0);
}

TEST(FStoreJournal, ImportRejectsCorruptStreamTail) {
  // Build a donor log of framed records, corrupt its tail, and import it
  // into a fresh journal — the standby-side half of torn-tail handling.
  FileStore donor(journal_opt());
  auto f = donor.create(kRootIno, "f", true).value();
  ASSERT_TRUE(donor.pwrite(f, 0, pattern(512, 50)).ok());
  ASSERT_EQ(donor.sync(f), Errc::kOk);
  const std::uint64_t intact = donor.journal_size();
  ASSERT_TRUE(donor.pwrite(f, 512, pattern(512, 51)).ok());
  ASSERT_EQ(donor.sync(f), Errc::kOk);
  donor.journal_log().corrupt_tail_byte();
  const auto stream =
      donor.journal_log().read(0, static_cast<std::size_t>(-1));

  fstore::FStoreJournal target;
  const auto res = target.import(stream);
  EXPECT_TRUE(res.truncated);
  // The longest valid prefix ends where the intact records end: everything
  // before the corrupted tail record was accepted, nothing after.
  EXPECT_EQ(res.accepted, intact);
  EXPECT_EQ(target.size(), intact);

  // Re-importing the same intact prefix from the target round-trips clean.
  fstore::FStoreJournal copy;
  const auto res2 = copy.import(target.read(0, static_cast<std::size_t>(-1)));
  EXPECT_FALSE(res2.truncated);
  EXPECT_EQ(copy.size(), intact);
}

TEST(FStoreJournal, DivergentSuffixTruncation) {
  // The quorum re-silver path: a deposed leader rejoins with journal bytes
  // the new leader never committed, truncates them off, and replays. The
  // truncated log must be a self-consistent prefix — the pre-divergence
  // image byte for byte, nothing torn.
  FileStore fs(journal_opt());
  auto f = fs.create(kRootIno, "f", true).value();
  const auto kept = pattern(512, 60);
  ASSERT_TRUE(fs.pwrite(f, 0, kept).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  const std::uint64_t match = fs.journal_size();

  // The divergent suffix: writes acknowledged only locally.
  ASSERT_TRUE(fs.pwrite(f, 512, pattern(512, 61)).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  const std::uint64_t full = fs.journal_size();
  ASSERT_GT(full, match);

  EXPECT_EQ(fs.journal_log().truncate(match), full - match);
  EXPECT_EQ(fs.journal_size(), match);
  fs.crash();

  // Replay of the truncated log: the suffix write is gone, the kept image
  // intact, and nothing further was dropped as torn.
  EXPECT_EQ(fs.journal_size(), match);
  EXPECT_EQ(fs.getattr(f).value().size, 512u);
  std::vector<std::byte> back(512);
  ASSERT_EQ(fs.pread(f, 0, back).value(), 512u);
  EXPECT_EQ(std::memcmp(back.data(), kept.data(), 512), 0);

  // The log still ends on a whole record: a non-mutating scan walks exactly
  // to the truncation point.
  std::uint64_t walked = 0;
  fs.journal_log().scan(
      [&](std::uint64_t off, fstore::RecType, std::span<const std::byte> p) {
        walked = off + sizeof(fstore::RecHeader) + p.size();
      });
  EXPECT_EQ(walked, match);

  // Truncating at or past the end is a no-op.
  EXPECT_EQ(fs.journal_log().truncate(match), 0u);
  EXPECT_EQ(fs.journal_log().truncate(match + 1024), 0u);
}

TEST(FStoreJournal, RepeatedTornTailImportIsIdempotent) {
  // A follower that reconnects mid-catch-up can receive the same journal
  // chunk twice; its handling — truncate back to the chunk's offset, then
  // import — must be idempotent: replaying twice yields byte-identical
  // journal state and an identical durable image, even when the stream
  // carries a torn tail both times.
  FileStore donor(journal_opt());
  auto f = donor.create(kRootIno, "f", true).value();
  const auto first = pattern(512, 70);
  ASSERT_TRUE(donor.pwrite(f, 0, first).ok());
  ASSERT_EQ(donor.sync(f), Errc::kOk);
  const std::uint64_t intact = donor.journal_size();
  ASSERT_TRUE(donor.pwrite(f, 512, pattern(512, 71)).ok());
  ASSERT_EQ(donor.sync(f), Errc::kOk);
  donor.journal_log().corrupt_tail_byte();
  const auto stream =
      donor.journal_log().read(0, static_cast<std::size_t>(-1));

  FileStore t(journal_opt());
  const std::uint64_t base = t.journal_size();  // whatever construction logged
  const auto r1 = t.journal_log().import(stream);
  EXPECT_TRUE(r1.truncated);
  EXPECT_EQ(r1.accepted, intact);
  t.crash();
  const auto image1 =
      t.journal_log().read(0, static_cast<std::size_t>(-1));
  std::vector<std::byte> back1(512);
  ASSERT_EQ(t.pread(f, 0, back1).value(), 512u);
  EXPECT_EQ(std::memcmp(back1.data(), first.data(), 512), 0);

  // Duplicate delivery of the same chunk: truncate to its offset, import
  // again, replay again.
  EXPECT_EQ(t.journal_log().truncate(base), intact);
  const auto r2 = t.journal_log().import(stream);
  EXPECT_TRUE(r2.truncated);
  EXPECT_EQ(r2.accepted, intact);
  t.crash();

  const auto image2 =
      t.journal_log().read(0, static_cast<std::size_t>(-1));
  EXPECT_EQ(image1.size(), image2.size());
  EXPECT_TRUE(image1 == image2) << "second replay diverged from the first";
  std::vector<std::byte> back2(512);
  ASSERT_EQ(t.pread(f, 0, back2).value(), 512u);
  EXPECT_EQ(std::memcmp(back2.data(), back1.data(), 512), 0);
  EXPECT_EQ(t.getattr(f).value().size, 512u);
}

TEST(FStoreJournal, TruncateDurabilityFollowsSync) {
  FileStore fs(journal_opt());
  auto f = fs.create(kRootIno, "f", true).value();
  const auto data = pattern(3 * 512, 30);
  ASSERT_TRUE(fs.pwrite(f, 0, data).ok());
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  ASSERT_EQ(fs.set_size(f, 512), Errc::kOk);
  ASSERT_EQ(fs.sync(f), Errc::kOk);
  fs.crash();
  EXPECT_EQ(fs.getattr(f).value().size, 512u);
  std::vector<std::byte> back(512);
  ASSERT_EQ(fs.pread(f, 0, back).value(), 512u);
  EXPECT_EQ(std::memcmp(back.data(), data.data(), 512), 0);
}

}  // namespace
