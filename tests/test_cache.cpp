#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "sim/rng.hpp"

/// \file test_cache.cpp
/// Client cache + delegation suite (ctest label `cache`). A sole opener gets
/// a server-issued delegation at open; while it holds one, reads come from
/// the client cache and — under after_close/after_job — writes buffer dirty
/// and flush on recall, close, sync, budget pressure or teardown. Leases are
/// real: an expired holder stops serving cached bytes and revalidates, and
/// the server fences writes stamped with a lapsed delegation id
/// (kDelegExpired). Capstone: an 8-seed quorum sweep killing the leader
/// mid-recall while the holder's lease runs out — the holder must never
/// serve stale cached bytes afterwards, and its fenced write-back must
/// surface as kDelegExpired, never as silent corruption.

namespace {

using dafs::Consistency;
using dafs::OpenOptions;
using dafs::PStatus;
using sim::Actor;
using sim::ActorScope;

constexpr std::uint64_t kTermNs = 10'000'000;  // ServerConfig::deleg_term_ns

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

dafs::MountSpec cache_mount(int max_busy_retries = 64) {
  dafs::RetryPolicy retry;
  retry.backoff_ns = 10'000;
  retry.backoff_cap_ns = 500'000;
  retry.max_busy_retries = max_busy_retries;
  return dafs::single_mount("dafs", retry);
}

OpenOptions cached_open(Consistency level,
                        std::uint64_t cache_bytes = 1 << 20,
                        std::uint16_t flags = dafs::kOpenCreate) {
  OpenOptions o;
  o.flags = flags;
  o.consistency = level;
  o.cache_bytes = cache_bytes;
  return o;
}

/// Single-filer bed: one server plus two client nodes (the holder and a
/// conflicting opener), each with its own actor/virtual clock.
class CacheTest : public ::testing::Test {
 protected:
  CacheTest()
      : server_node_(fabric_.add_node("filer")),
        node_a_(fabric_.add_node("client-a")),
        node_b_(fabric_.add_node("client-b")),
        server_(fabric_, server_node_, server_cfg()),
        nic_a_(fabric_, node_a_, "nic-a"),
        nic_b_(fabric_, node_b_, "nic-b"),
        actor_a_("client-a", &fabric_.node(node_a_)),
        actor_b_("client-b", &fabric_.node(node_b_)) {
    server_.start();
  }

  static dafs::ServerConfig server_cfg() {
    dafs::ServerConfig cfg;
    cfg.grace_period_ms = 0;  // grants from the first open
    return cfg;
  }

  std::uint64_t stat(const char* key) { return fabric_.stats().get(key); }

  sim::Fabric fabric_;
  sim::NodeId server_node_, node_a_, node_b_;
  dafs::Server server_;
  via::Nic nic_a_, nic_b_;
  Actor actor_a_, actor_b_;
};

// ---------------------------------------------------------------------------
// Grants and read caching
// ---------------------------------------------------------------------------

TEST_F(CacheTest, SoleOpenerGetsDelegationAndServesReadsLocally) {
  ActorScope scope(actor_a_);
  auto c = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
  auto fh =
      c->open("/hot.dat", cached_open(Consistency::kAfterWrite)).value();
  EXPECT_TRUE(c->has_delegation(fh));
  EXPECT_GE(stat("dafs.cache.grants"), 1u);

  const auto data = pattern(8 * 1024, 1);
  ASSERT_TRUE(c->pwrite(fh, 0, data).ok());

  // Close discards the cache along with the delegation; the re-open gets a
  // fresh grant, so the first read is an honest miss (server round trip)
  // and the repeats are pure client-side hits.
  EXPECT_EQ(c->close(fh), PStatus::kOk);
  fh = c->open("/hot.dat", cached_open(Consistency::kAfterWrite)).value();
  ASSERT_TRUE(c->has_delegation(fh));
  std::vector<std::byte> back(data.size());
  ASSERT_TRUE(c->pread(fh, 0, back).ok());
  EXPECT_EQ(back, data);
  const std::uint64_t hits0 = stat("dafs.cache.hits");
  for (int i = 0; i < 5; ++i) {
    std::memset(back.data(), 0, back.size());
    auto r = c->pread(fh, 0, back);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), data.size());
    EXPECT_EQ(back, data);
  }
  EXPECT_GE(stat("dafs.cache.hits"), hits0 + 5);
  EXPECT_GE(stat("dafs.cache.misses"), 1u);
  EXPECT_GT(c->cache_bytes(), 0u);
  EXPECT_EQ(c->close(fh), PStatus::kOk);
}

TEST_F(CacheTest, AfterWriteIsWriteThrough) {
  const auto data = pattern(4 * 1024, 2);
  {
    ActorScope scope(actor_a_);
    auto c = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
    auto fh =
        c->open("/wt.dat", cached_open(Consistency::kAfterWrite)).value();
    ASSERT_TRUE(c->pwrite(fh, 0, data).ok());
    // Write-through: nothing buffers, so nothing ever needs a write-back.
    EXPECT_EQ(stat("dafs.cache.writeback_bytes"), 0u);
    EXPECT_EQ(c->close(fh), PStatus::kOk);
  }
  // The bytes are on the server the moment pwrite returned; close only
  // returned the delegation.
  ActorScope scope(actor_b_);
  auto s = std::move(dafs::Session::connect(nic_b_, cache_mount()).value());
  auto fh = s->open("/wt.dat").value();
  std::vector<std::byte> back(data.size());
  ASSERT_TRUE(s->pread(fh, 0, back).ok());
  EXPECT_EQ(back, data);
}

// ---------------------------------------------------------------------------
// Write-back consistency levels
// ---------------------------------------------------------------------------

TEST_F(CacheTest, AfterCloseBuffersUntilCloseThenFlushes) {
  const auto data = pattern(16 * 1024, 3);
  {
    ActorScope scope(actor_a_);
    auto c = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
    auto fh =
        c->open("/wb.dat", cached_open(Consistency::kAfterClose)).value();
    ASSERT_TRUE(c->has_delegation(fh));
    auto w = c->pwrite(fh, 0, data);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.value(), data.size());
    // Still buffered client-side.
    EXPECT_EQ(stat("dafs.cache.writeback_bytes"), 0u);

    // Read-your-writes out of the dirty set, and getattr must cover the
    // buffered tail even though the server has never seen a byte.
    std::vector<std::byte> back(data.size());
    ASSERT_TRUE(c->pread(fh, 0, back).ok());
    EXPECT_EQ(back, data);
    auto a = c->getattr(fh);
    ASSERT_TRUE(a.ok());
    EXPECT_GE(a.value().size, data.size());

    EXPECT_EQ(c->close(fh), PStatus::kOk);
    EXPECT_GE(stat("dafs.cache.writeback_bytes"), data.size());
    EXPECT_GE(stat("dafs.cache.writebacks"), 1u);
  }
  ActorScope scope(actor_b_);
  auto s = std::move(dafs::Session::connect(nic_b_, cache_mount()).value());
  auto fh = s->open("/wb.dat").value();
  std::vector<std::byte> back(data.size());
  ASSERT_TRUE(s->pread(fh, 0, back).ok());
  EXPECT_EQ(back, data);
}

TEST_F(CacheTest, AfterJobKeepsCacheWarmAcrossClose) {
  ActorScope scope(actor_a_);
  const auto data = pattern(8 * 1024, 4);
  auto c = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
  auto fh = c->open("/job.dat", cached_open(Consistency::kAfterJob)).value();
  ASSERT_TRUE(c->pwrite(fh, 0, data).ok());
  EXPECT_EQ(c->close(fh), PStatus::kOk);
  // close() under after_job neither flushed nor returned the delegation.
  EXPECT_EQ(stat("dafs.cache.writeback_bytes"), 0u);

  // Warm re-open: same delegation id, cache intact — the read is a hit.
  auto fh2 = c->open("/job.dat", cached_open(Consistency::kAfterJob)).value();
  EXPECT_TRUE(c->has_delegation(fh2));
  const std::uint64_t hits0 = stat("dafs.cache.hits");
  std::vector<std::byte> back(data.size());
  ASSERT_TRUE(c->pread(fh2, 0, back).ok());
  EXPECT_EQ(back, data);
  EXPECT_GE(stat("dafs.cache.hits"), hits0 + 1);

  // sync() is the explicit job barrier: dirty bytes reach the server.
  ASSERT_EQ(c->sync(fh2), PStatus::kOk);
  EXPECT_GE(stat("dafs.cache.writeback_bytes"), data.size());
}

TEST_F(CacheTest, BudgetPressureFlushesDirtyAndEvictsClean) {
  ActorScope scope(actor_a_);
  auto c = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
  // A tiny budget: each 4 KiB write overflows the 8 KiB cache quickly.
  auto fh = c->open("/tiny.dat",
                    cached_open(Consistency::kAfterClose, 8 * 1024))
                .value();
  const auto chunk = pattern(4 * 1024, 5);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        c->pwrite(fh, static_cast<std::uint64_t>(i) * chunk.size(), chunk)
            .ok());
  }
  // Dirty data must have been flushed mid-stream (not held past budget) and
  // the cache stayed within its budget via clean eviction.
  EXPECT_GE(stat("dafs.cache.writebacks"), 1u);
  EXPECT_LE(c->cache_bytes(), 8u * 1024u);
  EXPECT_EQ(c->close(fh), PStatus::kOk);

  auto s = std::move(dafs::Session::connect(nic_a_, cache_mount()).value());
  auto vfh = s->open("/tiny.dat").value();
  std::vector<std::byte> back(chunk.size());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        s->pread(vfh, static_cast<std::uint64_t>(i) * chunk.size(), back)
            .ok());
    EXPECT_EQ(back, chunk) << "chunk " << i;
  }
}

// ---------------------------------------------------------------------------
// Recall: a conflicting opener forces the holder to flush and return
// ---------------------------------------------------------------------------

TEST_F(CacheTest, ConflictingReaderTriggersRecallHolderFlushes) {
  const auto v1 = pattern(8 * 1024, 6);
  ActorScope scope_a(actor_a_);
  auto a = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
  auto afh =
      a->open("/shared.dat", cached_open(Consistency::kAfterClose)).value();
  ASSERT_TRUE(a->has_delegation(afh));
  ASSERT_TRUE(a->pwrite(afh, 0, v1).ok());  // buffered dirty

  // A second client's *open* is the conflict point: the server starts a
  // recall and sheds the opener kBusy. With a tiny busy budget the opener
  // gives up instead of riding out the whole lease.
  {
    ActorScope scope_b(actor_b_);
    auto b = std::move(
        dafs::Session::connect(nic_b_, cache_mount(/*busy*/ 2)).value());
    auto bo = b->open("/shared.dat");
    ASSERT_FALSE(bo.ok());
    EXPECT_EQ(bo.error(), PStatus::kBusy);
    EXPECT_GE(stat("dafs.cache.recalls"), 1u);

    // The holder notices the recall at its next lease-renewal poll: advance
    // its clock past the local horizon (3/4 term) but short of expiry, so
    // the renewal succeeds, carries the recall flag, and the holder flushes
    // the dirty bytes and returns the delegation. (Nested scope: the holder
    // must act on its own virtual clock, not the reader's.)
    {
      ActorScope scope_a2(actor_a_);
      actor_a_.advance(kTermNs * 3 / 4 + kTermNs / 8);
      std::vector<std::byte> mine(v1.size());
      ASSERT_TRUE(a->pread(afh, 0, mine).ok());
      EXPECT_EQ(mine, v1);
      EXPECT_GE(stat("dafs.cache.recalls_serviced"), 1u);
      EXPECT_GE(stat("dafs.cache.writeback_bytes"), v1.size());
      EXPECT_FALSE(a->has_delegation(afh));
    }

    // The opener's retry now goes through and sees the flushed bytes.
    auto bfh = b->open("/shared.dat").value();
    std::vector<std::byte> back(v1.size());
    ASSERT_TRUE(b->pread(bfh, 0, back).ok());
    EXPECT_EQ(back, v1);
  }
  EXPECT_EQ(a->close(afh), PStatus::kOk);
}

TEST_F(CacheTest, IdleHolderLeaseExpiryUnblocksConflictingReader) {
  const auto v1 = pattern(4 * 1024, 7);
  ActorScope scope_a(actor_a_);
  auto a = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
  auto afh =
      a->open("/idle.dat", cached_open(Consistency::kAfterWrite)).value();
  ASSERT_TRUE(a->pwrite(afh, 0, v1).ok());  // write-through: server has v1

  // The holder goes idle. A conflicting opener with a deep busy budget
  // (each shed advances its clock ~200 us against the 10 ms term) outlasts
  // the lease: the server revokes the delegation and lets the open through.
  ActorScope scope_b(actor_b_);
  auto b = std::move(
      dafs::Session::connect(nic_b_, cache_mount(/*busy*/ 256)).value());
  auto bfh = b->open("/idle.dat").value();
  EXPECT_GE(stat("dafs.deleg_conflict_sheds"), 1u);
  std::vector<std::byte> back(v1.size());
  ASSERT_TRUE(b->pread(bfh, 0, back).ok());
  EXPECT_EQ(back, v1);
}

// ---------------------------------------------------------------------------
// Lease terms: expiry stops cached serving; expired write-backs fence
// ---------------------------------------------------------------------------

TEST_F(CacheTest, ExpiredClientRevalidatesInsteadOfServingCache) {
  ActorScope scope(actor_a_);
  const auto data = pattern(8 * 1024, 8);
  auto c = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
  auto fh =
      c->open("/lease.dat", cached_open(Consistency::kAfterWrite)).value();
  ASSERT_TRUE(c->pwrite(fh, 0, data).ok());
  std::vector<std::byte> back(data.size());
  ASSERT_TRUE(c->pread(fh, 0, back).ok());  // populate
  ASSERT_TRUE(c->pread(fh, 0, back).ok());  // hit

  // Sleep far past the term with no server contact. The renewal poll finds
  // the delegation gone; the client must drop its cache and re-read.
  actor_a_.advance(kTermNs * 4);
  const std::uint64_t hits0 = stat("dafs.cache.hits");
  std::memset(back.data(), 0, back.size());
  ASSERT_TRUE(c->pread(fh, 0, back).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(stat("dafs.cache.hits"), hits0) << "served from a dead lease";
  EXPECT_GE(stat("dafs.cache.client_expiries"), 1u);
  EXPECT_FALSE(c->has_delegation(fh));
}

TEST_F(CacheTest, ExpiredHolderWriteBackIsFenced) {
  ActorScope scope(actor_a_);
  const auto v1 = pattern(8 * 1024, 9);
  const auto v2 = pattern(8 * 1024, 10);
  auto c = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
  auto fh =
      c->open("/fence.dat", cached_open(Consistency::kAfterClose)).value();
  ASSERT_TRUE(c->pwrite(fh, 0, v1).ok());
  ASSERT_EQ(c->flush(fh), PStatus::kOk);  // v1 is server-backed
  ASSERT_TRUE(c->pwrite(fh, 0, v2).ok());  // v2 buffered dirty

  // The lease lapses before the write-back happens. The flush must be
  // fenced — a lapsed holder's bytes silently landing is exactly the
  // two-writers corruption delegations exist to prevent.
  actor_a_.advance(kTermNs * 4);
  EXPECT_EQ(c->flush(fh), PStatus::kDelegExpired);
  EXPECT_GE(stat("dafs.cache.expired_fences"), 1u);
  EXPECT_FALSE(c->has_delegation(fh));

  // The discarded bytes did NOT land: the file still reads v1.
  std::vector<std::byte> back(v1.size());
  ASSERT_TRUE(c->pread(fh, 0, back).ok());
  EXPECT_EQ(back, v1);
  EXPECT_EQ(c->close(fh), PStatus::kOk);
}

TEST_F(CacheTest, AttrCacheServesWithinTtl) {
  ActorScope scope(actor_a_);
  auto c = std::move(dafs::Client::connect(nic_a_, cache_mount()).value());
  OpenOptions o = cached_open(Consistency::kAfterWrite);
  o.attr_ttl_ns = 500'000;
  auto fh = c->open("/attr.dat", o).value();
  ASSERT_TRUE(c->pwrite(fh, 0, pattern(1024, 11)).ok());
  ASSERT_TRUE(c->getattr(fh).ok());  // miss: fills the attr cache
  const std::uint64_t hits0 = stat("dafs.cache.attr_hits");
  auto a = c->getattr(fh);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().size, 1024u);
  EXPECT_GE(stat("dafs.cache.attr_hits"), hits0 + 1);
  // Past the TTL the next getattr revalidates.
  actor_a_.advance(600'000);
  const std::uint64_t hits1 = stat("dafs.cache.attr_hits");
  ASSERT_TRUE(c->getattr(fh).ok());
  EXPECT_EQ(stat("dafs.cache.attr_hits"), hits1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Capstone: recall vs quorum failover, lease running out mid-outage
// ---------------------------------------------------------------------------

namespace {

using Role = dafs::Server::Role;

/// Quorum bed (mirrors test_quorum.cpp): member i serves clients at
/// "dafs-cq<i>", consensus on "dafs-craft-<i>".
struct FilerGroup {
  sim::Fabric& fabric;
  std::vector<sim::NodeId> nodes;
  std::vector<std::unique_ptr<dafs::Server>> members;

  FilerGroup(sim::Fabric& f, std::size_t n, dafs::ServerConfig base = {})
      : fabric(f) {
    std::vector<std::string> group;
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back("dafs-craft-" + std::to_string(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(f.add_node("filer-" + std::to_string(i)));
      dafs::ServerConfig cfg = base;
      cfg.service = client_service(i);
      cfg.quorum_group = group;
      cfg.member_id = static_cast<std::uint32_t>(i);
      cfg.repl_retry.jitter_seed = 100 + i;
      members.push_back(std::make_unique<dafs::Server>(f, nodes.back(), cfg));
    }
    for (auto& m : members) m->start();
  }

  ~FilerGroup() {
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      (*it)->stop();
    }
  }

  static std::string client_service(std::size_t i) {
    return "dafs-cq" + std::to_string(i);
  }

  std::vector<std::string> services() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < members.size(); ++i) {
      out.push_back(client_service(i));
    }
    return out;
  }

  int leader() const {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!members[i]->crashed() && members[i]->role() == Role::kPrimary) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  int wait_leader(int budget_ms = 15'000) const {
    for (int i = 0; i < budget_ms; ++i) {
      const int l = leader();
      if (l >= 0) return l;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return -1;
  }

  /// Wait for a live leader other than `not_this`.
  int wait_other_leader(int not_this, int budget_ms = 15'000) const {
    for (int i = 0; i < budget_ms; ++i) {
      const int l = leader();
      if (l >= 0 && l != not_this) return l;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return -1;
  }
};

dafs::MountSpec quorum_cfg(const FilerGroup& g, std::uint64_t seed, int rank,
                           int max_busy_retries = 64) {
  dafs::RetryPolicy retry;
  retry.attempts = 20;
  retry.backoff_ns = 20'000;
  retry.backoff_cap_ns = 2'000'000;
  retry.jitter_seed = seed * 131 + static_cast<std::uint64_t>(rank);
  retry.max_busy_retries = max_busy_retries;
  return dafs::quorum_mount(g.services(), retry);
}

dafs::ServerConfig quorum_base() {
  dafs::ServerConfig base;
  base.grace_period_ms = 10;
  base.repl_retry.deadline_ns = 50'000'000;
  return base;
}

void wait_restart(dafs::Server& server) {
  while (server.crashed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(CacheQuorum, RecallSurvivesLeaderKillNoStaleBytes) {
  // Seeded sweep: the holder buffers dirty bytes under a write delegation, a
  // conflicting reader puts the delegation mid-recall, then the leader dies
  // and the holder's lease runs out during the outage. Required outcome per
  // seed: the holder never serves its dead cache (every post-failover read
  // agrees with a fresh verifier session), and the holder's write-back is
  // either fully applied or fenced with kDelegExpired — nothing in between.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    sim::Fabric fabric;
    FilerGroup g(fabric, 3, quorum_base());
    const int l0 = g.wait_leader();
    ASSERT_GE(l0, 0);
    // Grants pause for grace_period_ms after election; ride it out.
    std::this_thread::sleep_for(std::chrono::milliseconds(15));

    const auto node_a = fabric.add_node("holder");
    const auto node_b = fabric.add_node("reader");
    sim::Actor actor_a("holder", &fabric.node(node_a));
    sim::Actor actor_b("reader", &fabric.node(node_b));
    via::Nic nic_a(fabric, node_a, "nic-a");
    via::Nic nic_b(fabric, node_b, "nic-b");

    const auto v1 = pattern(8 * 1024, seed * 2 + 1);
    const auto v2 = pattern(8 * 1024, seed * 2 + 2);

    ActorScope scope_a(actor_a);
    auto a = std::move(
        dafs::Client::connect(nic_a, quorum_cfg(g, seed, 0)).value());
    auto afh =
        a->open("/q.dat", cached_open(Consistency::kAfterClose)).value();
    if (!a->has_delegation(afh)) {
      // The election ran long and the open landed inside the grace window:
      // re-open once the window has passed (the file stays intact).
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      ASSERT_EQ(a->close(afh), PStatus::kOk);
      afh = a->open("/q.dat", cached_open(Consistency::kAfterClose)).value();
    }
    ASSERT_TRUE(a->has_delegation(afh));
    ASSERT_TRUE(a->pwrite(afh, 0, v1).ok());
    // sync (not bare flush): plain writes are idempotent and skip the quorum
    // commit barrier, so only the sync pins v1 at a majority before the kill.
    ASSERT_EQ(a->sync(afh), PStatus::kOk);  // v1 replicated at quorum
    ASSERT_TRUE(a->pwrite(afh, 0, v2).ok());  // v2 dirty, client-side only

    // Conflicting opener: its open collides with the write delegation,
    // starts the recall, and gives up on its small busy budget (the recall
    // is now pending server-side).
    {
      ActorScope scope_b(actor_b);
      auto b = std::move(
          dafs::Session::connect(nic_b, quorum_cfg(g, seed, 1, 2)).value());
      auto bo = b->open("/q.dat");  // kBusy (recall started); data if raced
      if (bo.ok()) {
        std::vector<std::byte> tmp(v1.size());
        (void)b->pread(bo.value(), 0, tmp);
      }
    }
    EXPECT_GE(fabric.stats().get("dafs.cache.recalls"), 1u);

    // Kill the leader mid-recall; its delegation table is volatile and dies
    // with it. The holder's lease expires during the outage.
    g.members[static_cast<std::size_t>(l0)]->inject_crash(40);
    const int l1 = g.wait_other_leader(l0);
    ASSERT_GE(l1, 0) << "no new leader";
    actor_a.advance(kTermNs * 4);

    // Holder's next read: the lease is dead and the delegation id names the
    // old incarnation — it must revalidate against the new leader, and its
    // final write-back attempt must fence, not land.
    const std::uint64_t hits0 = fabric.stats().get("dafs.cache.hits");
    std::vector<std::byte> mine(v1.size());
    auto r = a->pread(afh, 0, mine);
    ASSERT_TRUE(r.ok()) << "holder read failed: " << dafs::to_string(r.error());
    EXPECT_EQ(fabric.stats().get("dafs.cache.hits"), hits0)
        << "holder served bytes from a delegation the leader kill revoked";
    EXPECT_FALSE(a->has_delegation(afh));

    // The buffered v2 was fenced (the flush inside the drop recorded the
    // error); close surfaces it exactly once.
    const PStatus st = a->close(afh);
    EXPECT_TRUE(st == PStatus::kDelegExpired || st == PStatus::kOk)
        << dafs::to_string(st);

    // Ground truth from a fresh verifier session on the new leader: the
    // holder's read must agree byte-for-byte, and the file must hold either
    // v1 (write-back fenced) or v2 (write-back applied) — never a mix.
    ActorScope scope_v(actor_b);
    auto v = std::move(
        dafs::Session::connect(nic_b, quorum_cfg(g, seed, 2)).value());
    auto vfh = v->open("/q.dat").value();
    std::vector<std::byte> truth(v1.size());
    ASSERT_TRUE(v->pread(vfh, 0, truth).ok());
    EXPECT_EQ(mine, truth) << "holder and verifier disagree (stale cache)";
    EXPECT_TRUE(truth == v1 || truth == v2) << "torn write-back";
    if (st == PStatus::kDelegExpired) {
      EXPECT_EQ(truth, v1) << "fenced write-back landed anyway";
      EXPECT_GE(fabric.stats().get("dafs.cache.expired_fences"), 1u);
    }

    wait_restart(*g.members[static_cast<std::size_t>(l0)]);
  }
}

}  // namespace
