#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dafs/client.hpp"
#include "dafs/server.hpp"
#include "fstore/file_store.hpp"
#include "fstore/journal.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"

/// \file test_integrity.cpp
/// End-to-end data-integrity suite (ctest label `integrity`): the CRC-32C
/// block/wire codec round-trips every block shape, at-rest bit rot is
/// detected before a byte reaches a client and repaired from a quorum
/// replica's verified copy, a filer with no healthy copy demotes the block
/// to a read error (never silent bad bytes), and a wire flip on a write
/// payload is rejected server-side and retried with a fresh sequence so the
/// exactly-once duplicate filter never sees the damaged request. Capstone:
/// an 8-seed chaos sweep over a 3-member quorum group with the background
/// scrubber on.

namespace {

using dafs::PStatus;
using fstore::Errc;
using fstore::FileStore;
using fstore::kRootIno;
using sim::Actor;
using sim::ActorScope;

using Role = dafs::Server::Role;

constexpr std::size_t kBlock = 8 * 1024;

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

/// Real-time wait for a fabric stat to reach `at_least`.
bool wait_stat(sim::Fabric& fabric, const char* key, std::uint64_t at_least,
               int budget_ms = 15'000) {
  for (int i = 0; i < budget_ms; ++i) {
    if (fabric.stats().get(key) >= at_least) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return fabric.stats().get(key) >= at_least;
}

// ---------------------------------------------------------------------------
// Checksum codec: CRC-32C properties and block-shape round trips
// ---------------------------------------------------------------------------

TEST(IntegrityCodec, Crc32cSeedChainsToWholeBufferChecksum) {
  // Empty input with the default seed is the identity.
  EXPECT_EQ(fstore::crc32c({}), 0u);

  const auto data = pattern(4096, 9);
  const std::uint32_t whole = fstore::crc32c(data);
  // Chaining through the seed equals one pass over the concatenation — the
  // property the client relies on to checksum a scatter/gather iov list and
  // the server relies on to chain across extent spans.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{103},
                          std::size_t{2048}, data.size()}) {
    const std::uint32_t part = fstore::crc32c(std::span(data).subspan(0, cut));
    EXPECT_EQ(fstore::crc32c(std::span(data).subspan(cut), part), whole)
        << "cut " << cut;
  }
  // Byte-at-a-time chaining degenerates to the same value.
  std::uint32_t acc = 0;
  for (std::byte b : data) acc = fstore::crc32c({&b, 1}, acc);
  EXPECT_EQ(acc, whole);

  // Castagnoli and the journal's IEEE CRC-32 are distinct codecs: a framed
  // journal record can never masquerade as a verified data block.
  EXPECT_NE(fstore::crc32c(data), fstore::crc32(data));
  // Damage changes the value (the whole point).
  auto bent = data;
  bent[1234] ^= std::byte{0x01};
  EXPECT_NE(fstore::crc32c(bent), whole);
}

TEST(IntegrityCodec, BlockShapesDetectRotAndRepair) {
  sim::FaultPlan plan;
  fstore::Options opt;
  opt.chunk_size = 512;
  opt.faults = &plan;
  FileStore fs(opt);
  auto f = fs.create(kRootIno, "f", true).value();

  // Empty file: verification over any range is trivially clean, and a scrub
  // walk over a store with no allocated blocks completes an (empty) pass.
  EXPECT_EQ(fs.verify_range(f, 0, 4096), Errc::kOk);
  FileStore::ScrubCursor cur;
  EXPECT_TRUE(fs.scrub_step(&cur, 16).bad.empty());

  // Partial tail block (100 of 512 bytes) and a max-size (full-chunk) block.
  const auto tail = pattern(100, 1);
  const auto full = pattern(512, 2);
  ASSERT_TRUE(fs.pwrite(f, 0, tail).ok());
  ASSERT_TRUE(fs.pwrite(f, 512, full).ok());
  EXPECT_EQ(fs.verify_range(f, 0, 1024), Errc::kOk);
  std::vector<std::byte> back(100);
  ASSERT_EQ(fs.pread(f, 0, back, /*verify=*/true).value(), 100u);
  EXPECT_EQ(std::memcmp(back.data(), tail.data(), 100), 0);
  // A sparse hole past the data verifies clean and reads zeros.
  ASSERT_EQ(fs.set_size(f, 4 * 512), Errc::kOk);
  std::vector<std::byte> hole(512, std::byte{0xff});
  ASSERT_EQ(fs.pread(f, 2 * 512, hole, /*verify=*/true).value(), 512u);
  for (auto b : hole) EXPECT_EQ(b, std::byte{0});

  // Silent at-rest rot: the flip lands *after* the checksum was recorded.
  plan.arm(7);
  plan.corrupt_fstore_block_after(0);
  const auto tail2 = pattern(100, 3);
  ASSERT_TRUE(fs.pwrite(f, 0, tail2).ok());
  EXPECT_EQ(fs.stats().get("fault.fstore_bitflips"), 1u);
  // Unverified reads serve the rot without noticing — that is the failure
  // mode the checksum layer exists to close.
  std::vector<std::byte> rotted(100);
  ASSERT_EQ(fs.pread(f, 0, rotted, /*verify=*/false).value(), 100u);
  EXPECT_NE(std::memcmp(rotted.data(), tail2.data(), 100), 0);
  // Verified reads refuse.
  EXPECT_EQ(fs.pread(f, 0, back, /*verify=*/true).error(), Errc::kCorrupt);
  EXPECT_EQ(fs.verify_range(f, 0, 100), Errc::kCorrupt);
  EXPECT_GE(fs.stats().get("fstore.corrupt_blocks_detected"), 1u);

  // A full scrub pass names exactly the damaged chunk (index 0).
  cur = FileStore::ScrubCursor{};
  std::vector<FileStore::ScrubBlock> bad;
  for (;;) {
    const auto step = fs.scrub_step(&cur, 2);
    bad.insert(bad.end(), step.bad.begin(), step.bad.end());
    if (step.wrapped) break;
  }
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].ino, f);
  EXPECT_EQ(bad[0].chunk, 0u);

  // Repair with the clean bytes (zero-padded to the chunk): byte-exact
  // round trip and a clean verify afterwards.
  ASSERT_EQ(fs.repair_chunk(f, 0, tail2), Errc::kOk);
  EXPECT_EQ(fs.stats().get("fstore.chunks_repaired"), 1u);
  EXPECT_EQ(fs.verify_range(f, 0, 1024), Errc::kOk);
  ASSERT_EQ(fs.pread(f, 0, back, /*verify=*/true).value(), 100u);
  EXPECT_EQ(std::memcmp(back.data(), tail2.data(), 100), 0);
}

// ---------------------------------------------------------------------------
// Single filer: no replica to repair from — rot demotes to a read error
// ---------------------------------------------------------------------------

TEST(Integrity, SingleFilerRotDemotesToReadErrorNotSilentBytes) {
  sim::Fabric fabric;
  const auto snode = fabric.add_node("filer");
  dafs::ServerConfig cfg;
  cfg.service = "dafs-int";
  cfg.grace_period_ms = 10;
  cfg.store.chunk_size = kBlock;
  cfg.scrub_enabled = true;
  cfg.scrub_interval_ms = 2;
  cfg.scrub_chunks_per_step = 256;
  dafs::Server server(fabric, snode, cfg);
  server.start();

  const auto cnode = fabric.add_node("client");
  Actor actor("client", &fabric.node(cnode));
  ActorScope scope(actor);
  via::Nic nic(fabric, cnode, "nic");

  dafs::RetryPolicy retry;
  retry.attempts = 4;
  retry.backoff_ns = 20'000;
  retry.backoff_cap_ns = 2'000'000;
  retry.max_busy_retries = 3;  // a permanently rotted block must fail fast
  dafs::ClientConfig cc;
  cc.integrity = dafs::IntegrityMode::kFull;
  cc.direct_threshold = 1u << 20;  // keep the data inline for this test
  auto s = std::move(
      dafs::Session::connect(nic, dafs::single_mount("dafs-int", retry, cc))
          .value());
  auto fh = s->open("/r.dat", dafs::kOpenCreate).value();
  const auto clean = pattern(kBlock, 11);
  ASSERT_TRUE(s->pwrite(fh, 0, clean).ok());
  ASSERT_EQ(s->sync(fh), PStatus::kOk);

  // Arm one at-rest flip; the rewrite records the checksum first, then rots.
  fabric.faults().arm(42);
  fabric.faults().corrupt_fstore_block_after(0);
  const auto rewrite = pattern(kBlock, 12);
  ASSERT_TRUE(s->pwrite(fh, 0, rewrite).ok());
  ASSERT_EQ(s->sync(fh), PStatus::kOk);
  // The flip stat lives on the filer's own store, not the fabric.
  EXPECT_EQ(server.store().stats().get("fault.fstore_bitflips"), 1u);

  // The scrubber finds the block but has no replica group to fetch from:
  // it gives up cleanly and the block stays demoted.
  EXPECT_TRUE(wait_stat(fabric, "dafs.scrub_repair_failed", 1));
  EXPECT_GE(fabric.stats().get("dafs.scrub_corruptions"), 1u);
  EXPECT_EQ(fabric.stats().get("dafs.scrub_repairs"), 0u);

  // A verified read surfaces kCorrupt after its retry budget — an I/O
  // error, never rotted bytes.
  std::vector<std::byte> back(kBlock);
  auto rd = s->pread(fh, 0, back);
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.error(), PStatus::kCorrupt);
  EXPECT_GE(fabric.stats().get("dafs.corrupt_retries"), 1u);

  // An integrity-off session still reads the block — and gets the rot,
  // silently. That contrast is exactly what `dafs_integrity` buys.
  dafs::ClientConfig off = cc;
  off.integrity = dafs::IntegrityMode::kOff;
  auto s2 = std::move(
      dafs::Session::connect(nic, dafs::single_mount("dafs-int", retry, off))
          .value());
  auto fh2 = s2->open("/r.dat").value();
  ASSERT_EQ(s2->pread(fh2, 0, back).value(), kBlock);
  EXPECT_NE(std::memcmp(back.data(), rewrite.data(), kBlock), 0);
  s2.reset();
  s.reset();
  server.stop();
}

// ---------------------------------------------------------------------------
// Capstone: 8-seed chaos sweep over a scrubbing quorum group
// ---------------------------------------------------------------------------

/// Three quorum members with the background scrubber on; member i serves
/// clients at "dafs-qi<i>" and consensus runs over "dafs-iraft-<i>".
struct ScrubGroup {
  sim::Fabric& fabric;
  std::vector<sim::NodeId> nodes;
  std::vector<std::unique_ptr<dafs::Server>> members;

  explicit ScrubGroup(sim::Fabric& f, std::size_t n) : fabric(f) {
    std::vector<std::string> group;
    for (std::size_t i = 0; i < n; ++i) {
      group.push_back("dafs-iraft-" + std::to_string(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(f.add_node("ifiler-" + std::to_string(i)));
      dafs::ServerConfig cfg;
      cfg.service = client_service(i);
      cfg.quorum_group = group;
      cfg.member_id = static_cast<std::uint32_t>(i);
      cfg.grace_period_ms = 10;
      cfg.repl_retry.deadline_ns = 50'000'000;
      cfg.repl_retry.jitter_seed = 100 + i;
      cfg.store.chunk_size = kBlock;
      cfg.scrub_enabled = true;
      cfg.scrub_interval_ms = 2;
      cfg.scrub_chunks_per_step = 256;
      members.push_back(std::make_unique<dafs::Server>(f, nodes.back(), cfg));
    }
    for (auto& m : members) m->start();
  }

  ~ScrubGroup() {
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      (*it)->stop();
    }
  }

  static std::string client_service(std::size_t i) {
    return "dafs-qi" + std::to_string(i);
  }

  std::vector<std::string> services() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < members.size(); ++i) {
      out.push_back(client_service(i));
    }
    return out;
  }

  int wait_leader(int budget_ms = 15'000) const {
    for (int i = 0; i < budget_ms; ++i) {
      for (std::size_t m = 0; m < members.size(); ++m) {
        if (!members[m]->crashed() && members[m]->role() == Role::kPrimary) {
          return static_cast<int>(m);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return -1;
  }
};

dafs::MountSpec scrub_mount(const ScrubGroup& g, std::uint64_t seed) {
  dafs::RetryPolicy retry;
  retry.attempts = 20;
  retry.backoff_ns = 20'000;
  retry.backoff_cap_ns = 2'000'000;
  // Each kCorrupt retry yields ~1 ms of real time to the scrubber; the
  // budget must comfortably outlast a quorum repair under sanitizer load.
  retry.max_busy_retries = 300;
  retry.jitter_seed = seed * 131 + 5;
  dafs::ClientConfig cc;
  cc.integrity = dafs::IntegrityMode::kFull;
  cc.direct_threshold = 1u << 20;  // inline data path end to end
  return dafs::quorum_mount(g.services(), retry, cc,
                            static_cast<std::size_t>(seed % 3));
}

/// One seed of the chaos sweep. Leg 1 (at-rest): a seeded bit flip rots the
/// leader's copy of a block after its checksum (and its journal record,
/// which ships clean bytes to the followers at the sync barrier) were
/// recorded; a verifying read must never surface the rot, and the scrubber
/// must repair the block from a follower's verified copy. Leg 2 (wire): one
/// bit of an inline-write payload flips in flight; the server's payload-CRC
/// check rejects the request *before dispatch*, the client retries with a
/// fresh sequence, and the durable dup filter's exactly-once arithmetic is
/// undisturbed.
void run_integrity_chaos(std::uint64_t seed) {
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr std::uint64_t kDelta = 7;
  constexpr int kAdds = 4;

  sim::Fabric fabric;
  ScrubGroup g(fabric, 3);
  ASSERT_GE(g.wait_leader(), 0) << "seed " << seed;

  const auto cnode = fabric.add_node("client");
  Actor actor("client", &fabric.node(cnode));
  ActorScope scope(actor);
  via::Nic nic(fabric, cnode, "cli");
  auto s = std::move(
      dafs::Session::connect(nic, scrub_mount(g, seed)).value());
  auto fh = s->open("/chaos.dat", dafs::kOpenCreate).value();

  // Durable baseline: four blocks, committed at majority.
  std::vector<std::vector<std::byte>> blocks;
  for (std::uint64_t b = 0; b < 4; ++b) {
    blocks.push_back(pattern(kBlock, 500 + seed * 10 + b));
    ASSERT_TRUE(s->pwrite(fh, b * kBlock, blocks.back()).ok());
  }
  ASSERT_EQ(s->sync(fh), PStatus::kOk);

  // ---- leg 1: at-rest rot, detected on read, repaired from the quorum ----
  fabric.faults().arm(seed * 977 + 3);
  fabric.faults().corrupt_fstore_block_after(0);
  blocks[1] = pattern(kBlock, 600 + seed);
  ASSERT_TRUE(s->pwrite(fh, kBlock, blocks[1]).ok());
  // Sync ships the clean journal bytes to the followers — the healthy
  // copies the scrubber will repair from. The flip already hit the leader's
  // live chunk (post-checksum), so the rot is now sitting silent.
  ASSERT_EQ(s->sync(fh), PStatus::kOk);
  // Exactly one flip landed, on whichever member executed the write (the
  // leader); follower journal replay never consumes the armed fault.
  std::uint64_t flips = 0;
  for (const auto& m : g.members) {
    flips += m->store().stats().get("fault.fstore_bitflips");
  }
  EXPECT_EQ(flips, 1u) << "seed " << seed;

  // Race the scrubber: a verifying read either rides its retry backoff
  // through the repair (clean bytes) or exhausts it with kCorrupt — but it
  // NEVER returns rotted data.
  std::vector<std::byte> back(kBlock);
  auto rd = s->pread(fh, kBlock, back);
  if (rd.ok()) {
    EXPECT_EQ(std::memcmp(back.data(), blocks[1].data(), kBlock), 0)
        << "verified read surfaced rotted bytes, seed " << seed;
  } else {
    EXPECT_EQ(rd.error(), PStatus::kCorrupt) << "seed " << seed;
  }

  // The scrubber must find the block and restore it from a replica.
  EXPECT_TRUE(wait_stat(fabric, "dafs.scrub_repairs", 1))
      << "no quorum repair, seed " << seed;
  EXPECT_GE(fabric.stats().get("dafs.scrub_corruptions"), 1u);
  ASSERT_EQ(s->pread(fh, kBlock, back).value(), kBlock) << "seed " << seed;
  EXPECT_EQ(std::memcmp(back.data(), blocks[1].data(), kBlock), 0)
      << "repaired block not byte-exact, seed " << seed;

  // ---- leg 2: wire flip on an inline-write payload, exactly-once ----
  for (int i = 0; i < kAdds; ++i) {
    ASSERT_TRUE(s->fetch_add("ic.ctr", kDelta).ok()) << "seed " << seed;
  }
  // The flip target is deterministic: the plan's first RNG draw after arm()
  // becomes the corrupt seed, and the flipped byte is (seed % wire_len).
  // Size the payload so the flip provably lands in data bytes, not the
  // 104-byte header — header damage is the transport CRC's job; this layer
  // owns the payload.
  const std::uint64_t wire_seed = seed * 1313 + 11;
  std::uint64_t cs = sim::Rng(wire_seed).next();
  if (cs == 0) cs = 1;
  std::size_t wlen = 6000;
  while (wlen < 16'000 &&
         cs % (sizeof(dafs::MsgHeader) + wlen) < sizeof(dafs::MsgHeader)) {
    ++wlen;
  }
  ASSERT_LT(cs % (sizeof(dafs::MsgHeader) + wlen), sizeof(dafs::MsgHeader) + wlen);
  ASSERT_GE(cs % (sizeof(dafs::MsgHeader) + wlen), sizeof(dafs::MsgHeader))
      << "seed " << seed;
  fabric.faults().arm(wire_seed);
  fabric.faults().restrict_to_node(cnode);
  fabric.faults().corrupt_next_transfers(1);
  const auto wire_data = pattern(wlen, 700 + seed);
  const std::uint64_t rejects_before =
      fabric.stats().get("dafs.integrity_server_rejects");
  ASSERT_TRUE(s->pwrite(fh, 5 * kBlock, wire_data).ok()) << "seed " << seed;
  fabric.faults().clear();
  EXPECT_GE(fabric.stats().get("fault.transfer_corruptions"), 1u)
      << "seed " << seed;
  EXPECT_GT(fabric.stats().get("dafs.integrity_server_rejects"),
            rejects_before)
      << "server accepted a flipped payload, seed " << seed;
  EXPECT_GE(fabric.stats().get("dafs.corrupt_retries"), 1u) << "seed " << seed;
  for (int i = 0; i < kAdds; ++i) {
    ASSERT_TRUE(s->fetch_add("ic.ctr", kDelta).ok()) << "seed " << seed;
  }
  ASSERT_EQ(s->sync(fh), PStatus::kOk);

  // Exactly-once held: the rejected attempt never executed, the retry
  // executed once. And the write landed byte-exact.
  EXPECT_EQ(s->fetch_add("ic.ctr", 0).value(),
            static_cast<std::uint64_t>(2 * kAdds) * kDelta)
      << "seed " << seed;
  std::vector<std::byte> wback(wlen);
  ASSERT_EQ(s->pread(fh, 5 * kBlock, wback).value(), wlen);
  EXPECT_EQ(std::memcmp(wback.data(), wire_data.data(), wlen), 0)
      << "seed " << seed;
  s.reset();

  // Full-file audit through a pristine verifying mount: every byte of the
  // final image is exactly what the application wrote.
  {
    const auto vnode = fabric.add_node("verify");
    Actor vactor("verify", &fabric.node(vnode));
    ActorScope vscope(vactor);
    via::Nic vnic(fabric, vnode, "vnic");
    auto vs = std::move(
        dafs::Session::connect(vnic, scrub_mount(g, seed + 57)).value());
    auto vfh = vs->open("/chaos.dat").value();
    std::vector<std::byte> model(5 * kBlock + wlen, std::byte{0});
    for (std::uint64_t b = 0; b < 4; ++b) {
      std::memcpy(model.data() + b * kBlock, blocks[b].data(), kBlock);
    }
    std::memcpy(model.data() + 5 * kBlock, wire_data.data(), wlen);
    std::vector<std::byte> all(model.size());
    ASSERT_EQ(vs->pread(vfh, 0, all).value(), all.size()) << "seed " << seed;
    EXPECT_EQ(std::memcmp(all.data(), model.data(), model.size()), 0)
        << "seed " << seed;
    vs.reset();
  }

  EXPECT_LT(std::chrono::steady_clock::now() - wall_start,
            std::chrono::seconds(90))
      << "seed " << seed;
}

TEST(Integrity, SeededChaosSweep) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) run_integrity_chaos(seed);
}

}  // namespace
