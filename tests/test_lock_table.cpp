// Unit tests for the server-side byte-range lock table: overlap/conflict
// detection, POSIX-style partial release (trim/split), owner stacking, and
// whole-session / whole-table cleanup. The table is pure data structure, so
// these run without a fabric.

#include <gtest/gtest.h>

#include <cstdint>

#include "dafs/lock_table.hpp"

namespace {

constexpr std::uint64_t kIno = 7;
constexpr std::uint64_t kA = 1;  // owners (session ids)
constexpr std::uint64_t kB = 2;

TEST(LockTable, SharedLocksCoexist) {
  dafs::LockTable t;
  EXPECT_TRUE(t.try_acquire(kIno, 0, 100, kA, /*exclusive=*/false));
  EXPECT_TRUE(t.try_acquire(kIno, 50, 100, kB, /*exclusive=*/false));
  EXPECT_EQ(t.held(kIno), 2u);
}

TEST(LockTable, ExclusiveConflictsWithOverlap) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 100, kA, /*exclusive=*/true));
  // Any overlap with an exclusive lock is refused, shared or exclusive.
  EXPECT_FALSE(t.try_acquire(kIno, 99, 1, kB, /*exclusive=*/false));
  EXPECT_FALSE(t.try_acquire(kIno, 50, 100, kB, /*exclusive=*/true));
  // Adjacent (end-exclusive) ranges do not conflict.
  EXPECT_TRUE(t.try_acquire(kIno, 100, 50, kB, /*exclusive=*/true));
}

TEST(LockTable, SharedBlocksExclusive) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 100, kA, /*exclusive=*/false));
  EXPECT_FALSE(t.try_acquire(kIno, 0, 10, kB, /*exclusive=*/true));
}

TEST(LockTable, OwnerMayStackItsOwnRanges) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 100, kA, /*exclusive=*/true));
  // The same owner re-locking an overlapping range is allowed (lease
  // reclaim after a server restart does exactly this).
  EXPECT_TRUE(t.try_acquire(kIno, 0, 100, kA, /*exclusive=*/true));
  EXPECT_EQ(t.held_by(kIno, kA), 2u);
}

TEST(LockTable, ZeroLenMeansToEof) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 1000, 0, kA, /*exclusive=*/true));
  EXPECT_FALSE(t.try_acquire(kIno, 1u << 30, 10, kB, /*exclusive=*/true));
  EXPECT_TRUE(t.try_acquire(kIno, 0, 1000, kB, /*exclusive=*/true));
}

TEST(LockTable, ReleaseExactRange) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 100, kA, /*exclusive=*/true));
  EXPECT_TRUE(t.release(kIno, 0, 100, kA));
  EXPECT_EQ(t.held(kIno), 0u);
  EXPECT_TRUE(t.try_acquire(kIno, 0, 100, kB, /*exclusive=*/true));
}

TEST(LockTable, ReleaseMiddleSplitsRange) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 300, kA, /*exclusive=*/true));
  // Unlock the middle third: [0,300) becomes [0,100) + [200,300).
  EXPECT_TRUE(t.release(kIno, 100, 100, kA));
  EXPECT_EQ(t.held_by(kIno, kA), 2u);
  // The hole is now lockable by someone else, the flanks are not.
  EXPECT_TRUE(t.try_acquire(kIno, 100, 100, kB, /*exclusive=*/true));
  EXPECT_FALSE(t.try_acquire(kIno, 0, 100, kB, /*exclusive=*/false));
  EXPECT_FALSE(t.try_acquire(kIno, 200, 100, kB, /*exclusive=*/false));
}

TEST(LockTable, ReleaseTrimsHeadAndTail) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 100, 100, kA, /*exclusive=*/true));
  // Trim the head: [100,200) -> [150,200).
  EXPECT_TRUE(t.release(kIno, 0, 150, kA));
  EXPECT_TRUE(t.try_acquire(kIno, 100, 50, kB, /*exclusive=*/true));
  EXPECT_FALSE(t.try_acquire(kIno, 150, 1, kB, /*exclusive=*/true));
  // Trim the tail: [150,200) -> [150,175).
  EXPECT_TRUE(t.release(kIno, 175, 100, kA));
  EXPECT_TRUE(t.try_acquire(kIno, 175, 25, kB, /*exclusive=*/true));
  EXPECT_FALSE(t.try_acquire(kIno, 160, 10, kB, /*exclusive=*/true));
}

TEST(LockTable, ReleaseSplitsEofRange) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 0, kA, /*exclusive=*/true));
  // Punch a hole in a to-EOF lock; the tail must stay unbounded.
  EXPECT_TRUE(t.release(kIno, 100, 100, kA));
  EXPECT_EQ(t.held_by(kIno, kA), 2u);
  EXPECT_TRUE(t.try_acquire(kIno, 100, 100, kB, /*exclusive=*/true));
  EXPECT_FALSE(t.try_acquire(kIno, 1u << 20, 1, kB, /*exclusive=*/true));
}

TEST(LockTable, ReleaseZeroLenDropsTail) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 1000, kA, /*exclusive=*/true));
  // Unlock from 500 to EOF: only [0,500) survives.
  EXPECT_TRUE(t.release(kIno, 500, 0, kA));
  EXPECT_EQ(t.held_by(kIno, kA), 1u);
  EXPECT_TRUE(t.try_acquire(kIno, 500, 500, kB, /*exclusive=*/true));
  EXPECT_FALSE(t.try_acquire(kIno, 499, 1, kB, /*exclusive=*/true));
}

TEST(LockTable, ReleaseOnlyTouchesOwner) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 100, kA, /*exclusive=*/false));
  ASSERT_TRUE(t.try_acquire(kIno, 0, 100, kB, /*exclusive=*/false));
  EXPECT_TRUE(t.release(kIno, 0, 100, kA));
  EXPECT_EQ(t.held_by(kIno, kA), 0u);
  EXPECT_EQ(t.held_by(kIno, kB), 1u);
  // Releasing a range the owner does not hold reports nothing released.
  EXPECT_FALSE(t.release(kIno, 200, 100, kB));
  EXPECT_FALSE(t.release(kIno + 1, 0, 100, kB));
}

TEST(LockTable, ReleaseSpanningMultipleRanges) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 100, kA, /*exclusive=*/true));
  ASSERT_TRUE(t.try_acquire(kIno, 200, 100, kA, /*exclusive=*/true));
  ASSERT_TRUE(t.try_acquire(kIno, 400, 100, kA, /*exclusive=*/true));
  // One unlock covering the tail of the first range through the head of the
  // last: middle range vanishes, flanks are trimmed.
  EXPECT_TRUE(t.release(kIno, 50, 400, kA));
  EXPECT_EQ(t.held_by(kIno, kA), 2u);
  EXPECT_TRUE(t.try_acquire(kIno, 50, 400, kB, /*exclusive=*/true));
  EXPECT_FALSE(t.try_acquire(kIno, 0, 50, kB, /*exclusive=*/true));
  EXPECT_FALSE(t.try_acquire(kIno, 450, 50, kB, /*exclusive=*/true));
}

TEST(LockTable, ReleaseOwnerDropsSessionState) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 100, kA, /*exclusive=*/true));
  ASSERT_TRUE(t.try_acquire(kIno + 1, 0, 0, kA, /*exclusive=*/true));
  ASSERT_TRUE(t.try_acquire(kIno, 200, 100, kB, /*exclusive=*/true));
  t.release_owner(kA);
  EXPECT_EQ(t.held_by(kIno, kA), 0u);
  EXPECT_EQ(t.held(kIno + 1), 0u);
  EXPECT_EQ(t.held_by(kIno, kB), 1u);  // other sessions untouched
}

TEST(LockTable, ClearForgetsEverything) {
  dafs::LockTable t;
  ASSERT_TRUE(t.try_acquire(kIno, 0, 0, kA, /*exclusive=*/true));
  ASSERT_TRUE(t.try_acquire(kIno + 1, 0, 0, kB, /*exclusive=*/true));
  t.clear();  // server crash: all volatile lock state vanishes
  EXPECT_EQ(t.held(kIno), 0u);
  EXPECT_EQ(t.held(kIno + 1), 0u);
  EXPECT_TRUE(t.try_acquire(kIno, 0, 0, kB, /*exclusive=*/true));
}

}  // namespace
