#include <gtest/gtest.h>

#include <array>
#include <span>
#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/datatype.hpp"
#include "sim/rng.hpp"

namespace {

using mpi::Datatype;
using mpi::Segment;

std::uint64_t total_len(const std::vector<Segment>& segs) {
  std::uint64_t t = 0;
  for (const auto& s : segs) t += s.len;
  return t;
}

/// Reference: expand a segment list into a byte-offset set for exact
/// comparisons on small types.
std::vector<std::int64_t> offsets_of(const std::vector<Segment>& segs) {
  std::vector<std::int64_t> out;
  for (const auto& s : segs) {
    for (std::uint64_t i = 0; i < s.len; ++i) {
      out.push_back(s.offset + static_cast<std::int64_t>(i));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Basics and simple constructors
// ---------------------------------------------------------------------------

TEST(Datatype, BasicSizes) {
  EXPECT_EQ(Datatype::byte().size(), 1u);
  EXPECT_EQ(Datatype::int32().size(), 4u);
  EXPECT_EQ(Datatype::float64().size(), 8u);
  EXPECT_EQ(Datatype::int32().extent(), 4);
  EXPECT_TRUE(Datatype::int32().is_contiguous());
}

TEST(Datatype, ContiguousOfContiguousStaysContiguous) {
  auto t = Datatype::contiguous(10, Datatype::int32());
  EXPECT_EQ(t.size(), 40u);
  EXPECT_EQ(t.extent(), 40);
  EXPECT_TRUE(t.is_contiguous());
  auto t2 = Datatype::contiguous(3, t);
  EXPECT_EQ(t2.size(), 120u);
  EXPECT_TRUE(t2.is_contiguous());
  std::vector<Segment> segs;
  t2.flatten(segs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{0, 120}));
}

TEST(Datatype, VectorProducesStridedRuns) {
  // 3 blocks of 2 int32 every 4 int32: |XX..|XX..|XX
  auto t = Datatype::vector(3, 2, 4, Datatype::int32());
  EXPECT_EQ(t.size(), 24u);
  EXPECT_FALSE(t.is_contiguous());
  std::vector<Segment> segs;
  t.flatten(segs);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (Segment{0, 8}));
  EXPECT_EQ(segs[1], (Segment{16, 8}));
  EXPECT_EQ(segs[2], (Segment{32, 8}));
  // extent covers first byte to last byte of the last block
  EXPECT_EQ(t.extent(), 4 * 4 * 2 + 8);
}

TEST(Datatype, VectorWithUnitStrideCoalesces) {
  auto t = Datatype::vector(4, 1, 1, Datatype::int32());
  std::vector<Segment> segs;
  t.flatten(segs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{0, 16}));
  EXPECT_TRUE(t.is_contiguous());
}

TEST(Datatype, HvectorByteStride) {
  auto t = Datatype::hvector(2, 3, 100, Datatype::byte());
  std::vector<Segment> segs;
  t.flatten(segs);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{0, 3}));
  EXPECT_EQ(segs[1], (Segment{100, 3}));
}

TEST(Datatype, IndexedBlocks) {
  const std::array<std::uint32_t, 3> lens = {2, 1, 3};
  const std::array<std::int32_t, 3> displs = {0, 5, 10};
  auto t = Datatype::indexed(lens, displs, Datatype::int32());
  EXPECT_EQ(t.size(), 24u);
  std::vector<Segment> segs;
  t.flatten(segs);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (Segment{0, 8}));
  EXPECT_EQ(segs[1], (Segment{20, 4}));
  EXPECT_EQ(segs[2], (Segment{40, 12}));
}

TEST(Datatype, StructOfMixedTypes) {
  // struct { int32 a; double b[2]; char c; } with explicit displacements.
  const std::array<std::uint32_t, 3> lens = {1, 2, 1};
  const std::array<std::int64_t, 3> displs = {0, 8, 24};
  const std::array<Datatype, 3> types = {Datatype::int32(),
                                         Datatype::float64(),
                                         Datatype::byte()};
  auto t = Datatype::struct_of(lens, displs, types);
  EXPECT_EQ(t.size(), 4u + 16u + 1u);
  std::vector<Segment> segs;
  t.flatten(segs);
  // The doubles end at byte 24 where the char starts, so those runs coalesce.
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{0, 4}));
  EXPECT_EQ(segs[1], (Segment{8, 17}));
}

TEST(Datatype, ResizedChangesExtentNotSize) {
  auto t = Datatype::resized(Datatype::int32(), 0, 16);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.extent(), 16);
  EXPECT_FALSE(t.is_contiguous());
  // Tiling 3 elements: offsets 0, 16, 32.
  auto segs = t.flatten_n(3);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[1].offset, 16);
  EXPECT_EQ(segs[2].offset, 32);
}

// ---------------------------------------------------------------------------
// Subarray
// ---------------------------------------------------------------------------

TEST(Datatype, Subarray2dExtractsBlock) {
  // 4x6 int32 array, take the 2x3 block starting at (1,2).
  const std::array<std::uint32_t, 2> sizes = {4, 6};
  const std::array<std::uint32_t, 2> subsizes = {2, 3};
  const std::array<std::uint32_t, 2> starts = {1, 2};
  auto t = Datatype::subarray(sizes, subsizes, starts, Datatype::int32());
  EXPECT_EQ(t.size(), 2u * 3u * 4u);
  EXPECT_EQ(t.extent(), 4 * 6 * 4);  // full array
  std::vector<Segment> segs;
  t.flatten(segs);
  ASSERT_EQ(segs.size(), 2u);
  // Row 1, cols 2..4 -> offset (1*6+2)*4 = 32, len 12.
  EXPECT_EQ(segs[0], (Segment{32, 12}));
  // Row 2, cols 2..4 -> offset (2*6+2)*4 = 56, len 12.
  EXPECT_EQ(segs[1], (Segment{56, 12}));
}

TEST(Datatype, Subarray1dDegeneratesToOffsetRun) {
  const std::array<std::uint32_t, 1> sizes = {10};
  const std::array<std::uint32_t, 1> subsizes = {4};
  const std::array<std::uint32_t, 1> starts = {3};
  auto t = Datatype::subarray(sizes, subsizes, starts, Datatype::float64());
  std::vector<Segment> segs;
  t.flatten(segs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{24, 32}));
  EXPECT_EQ(t.extent(), 80);
}

TEST(Datatype, Subarray3dRunCount) {
  const std::array<std::uint32_t, 3> sizes = {4, 4, 8};
  const std::array<std::uint32_t, 3> subsizes = {2, 2, 8};
  const std::array<std::uint32_t, 3> starts = {1, 1, 0};
  auto t = Datatype::subarray(sizes, subsizes, starts, Datatype::byte());
  std::vector<Segment> segs;
  t.flatten(segs);
  // Full rows in the last dimension coalesce: 2*2 runs of 8... but rows at
  // (r, 1..2, 0..7) with the dim-1 rows adjacent? Row (r,1,*) spans bytes
  // [r*32+8, r*32+24) — 16 contiguous bytes per r. So 2 runs of 16.
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].len, 16u);
  EXPECT_EQ(segs[1].len, 16u);
  EXPECT_EQ(t.size(), 32u);
}

TEST(Datatype, SubarrayTilesAtFullArrayExtent) {
  // Tiling a subarray across elements must step by the full array size —
  // this is what makes block-distributed file views work.
  const std::array<std::uint32_t, 1> sizes = {8};
  const std::array<std::uint32_t, 1> subsizes = {2};
  const std::array<std::uint32_t, 1> starts = {2};
  auto t = Datatype::subarray(sizes, subsizes, starts, Datatype::int32());
  auto segs = t.flatten_n(3);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].offset, 8);
  EXPECT_EQ(segs[1].offset, 8 + 32);
  EXPECT_EQ(segs[2].offset, 8 + 64);
}

// ---------------------------------------------------------------------------
// Composition
// ---------------------------------------------------------------------------

TEST(Datatype, VectorOfStructs) {
  const std::array<std::uint32_t, 2> lens = {1, 1};
  const std::array<std::int64_t, 2> displs = {0, 6};
  const std::array<Datatype, 2> types = {Datatype::int32(), Datatype::byte()};
  auto rec = Datatype::struct_of(lens, displs, types);
  auto rec8 = Datatype::resized(rec, 0, 8);
  auto t = Datatype::vector(2, 1, 2, rec8);  // every other record
  std::vector<Segment> segs;
  t.flatten(segs);
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0], (Segment{0, 4}));
  EXPECT_EQ(segs[1], (Segment{6, 1}));
  EXPECT_EQ(segs[2], (Segment{16, 4}));
  EXPECT_EQ(segs[3], (Segment{22, 1}));
}

TEST(Datatype, SizeIsAlwaysSumOfFlattenedRuns) {
  // Property across a family of composed types.
  sim::Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    Datatype t = Datatype::basic(1 + static_cast<std::uint32_t>(rng.below(8)));
    for (int depth = 0; depth < 3; ++depth) {
      switch (rng.below(4)) {
        case 0:
          t = Datatype::contiguous(1 + static_cast<std::uint32_t>(rng.below(4)), t);
          break;
        case 1: {
          // Keep stride >= blocklen so the type map stays non-overlapping
          // (overlap is legal MPI but defeats the disjointness property
          // this sweep checks).
          const auto blocklen = 1 + static_cast<std::uint32_t>(rng.below(3));
          const auto stride =
              static_cast<std::int32_t>(blocklen + rng.below(3));
          t = Datatype::vector(1 + static_cast<std::uint32_t>(rng.below(3)),
                               blocklen, stride, t);
          break;
        }
        case 2: {
          const std::array<std::uint32_t, 2> lens = {
              1 + static_cast<std::uint32_t>(rng.below(3)),
              1 + static_cast<std::uint32_t>(rng.below(3))};
          const std::array<std::int32_t, 2> displs = {
              0, 4 + static_cast<std::int32_t>(rng.below(4))};
          t = Datatype::indexed(lens, displs, t);
          break;
        }
        case 3:
          t = Datatype::resized(t, 0, t.extent() + static_cast<std::int64_t>(
                                                       rng.below(16)));
          break;
      }
    }
    std::vector<Segment> segs;
    t.flatten(segs);
    EXPECT_EQ(total_len(segs), t.size());
    // Runs must be disjoint and sorted for these constructions.
    auto offs = offsets_of(segs);
    for (std::size_t i = 1; i < offs.size(); ++i) {
      EXPECT_LT(offs[i - 1], offs[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Pack / unpack
// ---------------------------------------------------------------------------

TEST(Datatype, PackUnpackRoundTripStrided) {
  auto t = Datatype::vector(4, 2, 3, Datatype::int32());
  std::vector<std::int32_t> src(64);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::byte> packed;
  t.pack(reinterpret_cast<const std::byte*>(src.data()), 2, packed);
  EXPECT_EQ(packed.size(), 2 * t.size());

  std::vector<std::int32_t> dst(64, -1);
  const std::uint64_t used =
      t.unpack(packed, reinterpret_cast<std::byte*>(dst.data()), 2);
  EXPECT_EQ(used, packed.size());
  // Every position covered by the type matches; others untouched.
  const auto segs = t.flatten_n(2);
  std::vector<bool> covered(64 * 4, false);
  for (const auto& s : segs) {
    for (std::uint64_t b = 0; b < s.len; ++b) {
      covered[static_cast<std::size_t>(s.offset) + b] = true;
    }
  }
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (covered[i * 4]) {
      EXPECT_EQ(dst[i], src[i]) << i;
    } else {
      EXPECT_EQ(dst[i], -1) << i;
    }
  }
}

TEST(Datatype, UnpackClampsToInput) {
  auto t = Datatype::contiguous(10, Datatype::byte());
  std::array<std::byte, 4> in = {std::byte{1}, std::byte{2}, std::byte{3},
                                 std::byte{4}};
  std::array<std::byte, 10> out{};
  EXPECT_EQ(t.unpack(in, out.data(), 1), 4u);
  EXPECT_EQ(out[3], std::byte{4});
  EXPECT_EQ(out[4], std::byte{0});
}

// ---------------------------------------------------------------------------
// Parameterized: tiling invariants for vector types
// ---------------------------------------------------------------------------

struct VecParam {
  std::uint32_t count, blocklen;
  std::int32_t stride;
};

class VectorTiling : public ::testing::TestWithParam<VecParam> {};

TEST_P(VectorTiling, FlattenNEqualsRepeatedFlatten) {
  const auto p = GetParam();
  auto t = Datatype::vector(p.count, p.blocklen, p.stride, Datatype::int32());
  auto tiled = t.flatten_n(4);
  std::vector<Segment> manual;
  for (int i = 0; i < 4; ++i) {
    t.flatten(manual, i * t.extent());
  }
  EXPECT_EQ(offsets_of(tiled), offsets_of(manual));
  EXPECT_EQ(total_len(tiled), 4 * t.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, VectorTiling,
    ::testing::Values(VecParam{1, 1, 1}, VecParam{2, 1, 2}, VecParam{3, 2, 5},
                      VecParam{4, 4, 4}, VecParam{5, 3, 7},
                      VecParam{8, 1, 3}));


// ---------------------------------------------------------------------------
// darray (MPI_Type_create_darray)
// ---------------------------------------------------------------------------

using Dist = Datatype::Dist;

/// Brute-force reference: enumerate every element of the global array and
/// decide its owner by the standard block/cyclic formulas.
std::vector<std::int64_t> darray_reference(
    int rank, std::span<const std::uint32_t> gsizes,
    std::span<const Dist> dists, std::span<const std::int32_t> dargs,
    std::span<const std::uint32_t> psizes, std::uint32_t esize) {
  const std::size_t nd = gsizes.size();
  std::vector<std::uint32_t> coord(nd);
  {
    std::uint32_t rem = static_cast<std::uint32_t>(rank);
    for (std::size_t d = nd; d-- > 0;) {
      coord[d] = rem % psizes[d];
      rem /= psizes[d];
    }
  }
  auto owns = [&](std::size_t d, std::uint32_t idx) {
    switch (dists[d]) {
      case Dist::kNone:
        return true;
      case Dist::kBlock: {
        const std::uint32_t b = dargs[d] == Datatype::kDfltDarg
                                    ? (gsizes[d] + psizes[d] - 1) / psizes[d]
                                    : static_cast<std::uint32_t>(dargs[d]);
        return idx / b == coord[d];
      }
      case Dist::kCyclic: {
        const std::uint32_t b = dargs[d] == Datatype::kDfltDarg
                                    ? 1u
                                    : static_cast<std::uint32_t>(dargs[d]);
        return (idx / b) % psizes[d] == coord[d];
      }
    }
    return false;
  };
  std::uint64_t total = 1;
  for (auto g : gsizes) total *= g;
  std::vector<std::int64_t> offsets;
  for (std::uint64_t lin = 0; lin < total; ++lin) {
    std::uint64_t rem = lin;
    bool mine = true;
    for (std::size_t d = nd; d-- > 0;) {
      const auto idx = static_cast<std::uint32_t>(rem % gsizes[d]);
      rem /= gsizes[d];
      if (!owns(d, idx)) {
        mine = false;
        break;
      }
    }
    if (mine) {
      for (std::uint32_t b = 0; b < esize; ++b) {
        offsets.push_back(static_cast<std::int64_t>(lin * esize + b));
      }
    }
  }
  return offsets;
}

struct DarrayCase {
  std::vector<std::uint32_t> gsizes;
  std::vector<Dist> dists;
  std::vector<std::int32_t> dargs;
  std::vector<std::uint32_t> psizes;
  std::uint32_t esize;
};

class DarrayVsReference : public ::testing::TestWithParam<DarrayCase> {};

TEST_P(DarrayVsReference, EveryRankMatchesBruteForce) {
  const auto& p = GetParam();
  auto etype = Datatype::basic(p.esize);
  std::uint32_t nprocs = 1;
  for (auto ps : p.psizes) nprocs *= ps;
  std::uint64_t covered = 0;
  std::uint64_t total_bytes = p.esize;
  for (auto g : p.gsizes) total_bytes *= g;
  for (std::uint32_t r = 0; r < nprocs; ++r) {
    auto t = Datatype::darray(static_cast<int>(r), p.gsizes, p.dists, p.dargs,
                              p.psizes, etype);
    EXPECT_EQ(t.extent(), static_cast<std::int64_t>(total_bytes));
    std::vector<Segment> segs;
    t.flatten(segs);
    const auto got = offsets_of(segs);
    const auto expect = darray_reference(static_cast<int>(r), p.gsizes,
                                         p.dists, p.dargs, p.psizes, p.esize);
    EXPECT_EQ(got, expect) << "rank " << r;
    covered += t.size();
    // Owned bytes are disjoint and sorted.
    for (std::size_t i = 1; i < got.size(); ++i) {
      ASSERT_LT(got[i - 1], got[i]);
    }
  }
  // When every dimension's blocks tile the array exactly, ranks partition it.
  EXPECT_EQ(covered, total_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DarrayVsReference,
    ::testing::Values(
        // 1-D block over 4 procs, divisible.
        DarrayCase{{16}, {Dist::kBlock}, {Datatype::kDfltDarg}, {4}, 4},
        // 1-D pure cyclic.
        DarrayCase{{12}, {Dist::kCyclic}, {Datatype::kDfltDarg}, {3}, 8},
        // 1-D block-cyclic with explicit block 2.
        DarrayCase{{16}, {Dist::kCyclic}, {2}, {4}, 1},
        // 2-D block x block (the HPF default decomposition).
        DarrayCase{{8, 8},
                   {Dist::kBlock, Dist::kBlock},
                   {Datatype::kDfltDarg, Datatype::kDfltDarg},
                   {2, 2},
                   4},
        // 2-D block x cyclic mix.
        DarrayCase{{6, 8},
                   {Dist::kBlock, Dist::kCyclic},
                   {Datatype::kDfltDarg, 2},
                   {2, 2},
                   2},
        // 3-D with an undistributed middle dimension.
        DarrayCase{{4, 3, 8},
                   {Dist::kCyclic, Dist::kNone, Dist::kBlock},
                   {Datatype::kDfltDarg, Datatype::kDfltDarg,
                    Datatype::kDfltDarg},
                   {2, 1, 2},
                   1}));

TEST(DatatypeDarray, UnevenBlockEdgeRanksGetShortOrEmptyPieces) {
  // 10 elements, block over 4 procs: default block = ceil(10/4) = 3 ->
  // ranks own 3,3,3,1 elements.
  const std::array<std::uint32_t, 1> gsizes = {10};
  const std::array<Dist, 1> dists = {Dist::kBlock};
  const std::array<std::int32_t, 1> dargs = {Datatype::kDfltDarg};
  const std::array<std::uint32_t, 1> psizes = {4};
  std::uint64_t covered = 0;
  for (int r = 0; r < 4; ++r) {
    auto t = Datatype::darray(r, gsizes, dists, dargs, psizes,
                              Datatype::int32());
    covered += t.size() / 4;
  }
  EXPECT_EQ(covered, 10u);
  auto last = Datatype::darray(3, gsizes, dists, dargs, psizes,
                               Datatype::int32());
  EXPECT_EQ(last.size(), 4u);  // one int
  std::vector<Segment> segs;
  last.flatten(segs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].offset, 9 * 4);
}

}  // namespace
